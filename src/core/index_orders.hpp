// index_orders.hpp — the paper's work-item index orderings.
//
// Every 3LP/4LP kernel decodes (site, row i, dim k, link l) from the global
// id; the paper studies how the decode order maps work-items onto the data
// (§III-C/D, §IV-D7).  Each policy is a constexpr decode matching the code
// snippets in the paper, plus the local-memory strides the reduction phases
// need (distance between work-items that differ by one in k or l).
#pragma once

#include <cstdint>

namespace milc {

/// Decoded identity of a 3LP work-item.
struct Idx3 {
  std::int64_t s;
  int i;
  int k;
  int delta_k;  ///< local-id distance between k and k+1 partials
};

/// Decoded identity of a 4LP work-item.
struct Idx4 {
  std::int64_t s;
  int i;
  int k;
  int l;
  int delta_k;
  int delta_l;
};

enum class Order3 { kMajor, iMajor };
enum class Order4 {
  lp1_kMajor,  ///< 4LP-1: grouped by l, then k  (Fig. 5a)
  lp1_iMajor,  ///< 4LP-1: grouped by l, then i  (Fig. 5b)
  lp2_lMajor,  ///< 4LP-2: grouped by k, then l  (Fig. 4a)
  lp2_iMajor,  ///< 4LP-2: grouped by k, then i  (Fig. 4b)
};

inline constexpr int kNrow = 3;
inline constexpr int kNdimIdx = 4;
inline constexpr int kNmat = 4;

/// 3LP decode (12 work-items per site).
template <Order3 O>
[[nodiscard]] constexpr Idx3 decode3(std::int64_t gid) {
  if constexpr (O == Order3::kMajor) {
    // int s = gid / (ndim*nrow); int i = gid % nrow; int k = (gid/nrow) % ndim;
    return {gid / (kNdimIdx * kNrow), static_cast<int>(gid % kNrow),
            static_cast<int>((gid / kNrow) % kNdimIdx), kNrow};
  } else {
    // int i = (gid/ndim) % nrow; int k = gid % ndim;
    return {gid / (kNdimIdx * kNrow), static_cast<int>((gid / kNdimIdx) % kNrow),
            static_cast<int>(gid % kNdimIdx), 1};
  }
}

/// 4LP decode (48 work-items per site).
template <Order4 O>
[[nodiscard]] constexpr Idx4 decode4(std::int64_t gid) {
  const std::int64_t s = gid / (kNdimIdx * kNrow * kNmat);
  if constexpr (O == Order4::lp1_kMajor) {
    // i = gid % nrow; k = (gid/nrow) % ndim; l = (gid/(ndim*nrow)) % nmat;
    return {s, static_cast<int>(gid % kNrow), static_cast<int>((gid / kNrow) % kNdimIdx),
            static_cast<int>((gid / (kNdimIdx * kNrow)) % kNmat), kNrow, kNdimIdx * kNrow};
  } else if constexpr (O == Order4::lp1_iMajor) {
    // i = (gid/ndim) % nrow; k = gid % ndim; l = (gid/(ndim*nrow)) % nmat;
    return {s, static_cast<int>((gid / kNdimIdx) % kNrow), static_cast<int>(gid % kNdimIdx),
            static_cast<int>((gid / (kNdimIdx * kNrow)) % kNmat), 1, kNdimIdx * kNrow};
  } else if constexpr (O == Order4::lp2_lMajor) {
    // k = (gid/(nmat*nrow)) % ndim; l = (gid/nrow) % nmat; i = gid % nrow;
    return {s, static_cast<int>(gid % kNrow),
            static_cast<int>((gid / (kNmat * kNrow)) % kNdimIdx),
            static_cast<int>((gid / kNrow) % kNmat), kNmat * kNrow, kNrow};
  } else {
    // i = (gid/nmat) % nrow; k = (gid/(nmat*nrow)) % ndim; l = gid % nmat;
    return {s, static_cast<int>((gid / kNmat) % kNrow),
            static_cast<int>((gid / (kNmat * kNrow)) % kNdimIdx),
            static_cast<int>(gid % kNmat), kNmat * kNrow, 1};
  }
}

}  // namespace milc
