// runner.hpp — executes Dslash strategy/variant configurations on the
// simulated device and reports paper-convention results.
//
// The paper's methodology (§IV-B): mean kernel runtime over 10 runs x 100
// iterations + 1 warm-up, GFLOP/s from the theoretical FLOP count.  Our
// simulator is deterministic, so one profiled execution yields the exact
// per-iteration kernel time; the runner adds the per-submission launch
// overhead of the queue's ordering semantics, which is what distinguishes
// in-order from out-of-order builds across the 100-iteration loop.
#pragma once

#include <string>

#include "core/problem.hpp"
#include "core/strategy.hpp"
#include "core/variants.hpp"
#include "gpusim/stats.hpp"
#include "ksan/sanitizer.hpp"
#include "minisycl/queue.hpp"
#include "tune/explorer.hpp"
#include "tune/tune_key.hpp"

namespace milc {

/// Append the exact byte extents of a Dslash argument block (gauge links,
/// source/target fields, neighbour table) to a sanitizer config.  The fields
/// live in host std::vector storage, not USM, so the Registry alone cannot
/// vouch for them.
void declare_dslash_regions(const DslashArgs<dcomplex>& a, ksan::SanitizeConfig& cfg);

struct RunRequest {
  Strategy strategy = Strategy::LP3_1;
  IndexOrder order = IndexOrder::kMajor;
  int local_size = 768;
  Variant variant = Variant::SYCL;
  int iterations = 100;  ///< kernel iterations per run (paper: 100)
};

struct RunResult {
  std::string label;
  gpusim::KernelStats stats;   ///< Nsight-style record of one kernel launch
  double kernel_us = 0.0;      ///< simulated kernel duration
  double per_iter_us = 0.0;    ///< kernel + launch overhead (what a host timer sees)
  double gflops = 0.0;         ///< theoretical FLOPs / per_iter (paper convention)
};

/// Result of an autotuned run (run_tuned): the winning execution plus the
/// tuning-cache entry it produced or replayed.
struct TunedRunResult {
  RunResult result;
  tune::TuneEntry entry;
  bool from_cache = false;    ///< true when a cache hit was replayed
  int candidates_tried = 0;   ///< 1 on a hit; the sweep size on a miss
};

class DslashRunner {
 public:
  explicit DslashRunner(gpusim::MachineModel machine = gpusim::a100(),
                        gpusim::Calibration cal = gpusim::default_calibration())
      : machine_(machine), cal_(cal) {}

  [[nodiscard]] const gpusim::MachineModel& machine() const { return machine_; }
  [[nodiscard]] const gpusim::Calibration& calibration() const { return cal_; }

  /// Profiled run: full simulation, Table-I statistics, paper-convention
  /// GFLOP/s.  Throws std::invalid_argument for configurations that violate
  /// the §III local-size rules.
  [[nodiscard]] RunResult run(DslashProblem& problem, const RunRequest& req) const;

  /// Like run(), but submits on a caller-owned queue — the hook the resilient
  /// execution path uses so injected faults land in *its* asynchronous error
  /// list (drained with wait_and_throw) instead of a throwaway queue's.  The
  /// caller chooses the queue's order; per-iteration time uses that queue's
  /// launch overhead.
  [[nodiscard]] RunResult run_on(minisycl::queue& q, DslashProblem& problem,
                                 const RunRequest& req) const;

  /// Autotuned run.  With a tune::TuneSession installed, consults the cache
  /// under tune_key() first: a hit replays the cached configuration once and
  /// verifies its simulated time bit-for-bit (tune::ReplayMismatch on any
  /// difference — the honesty rule of docs/TUNING.md); a miss sweeps
  /// orders_of(s) x paper_local_sizes and records the winner.  Without a
  /// session it degrades to the plain exhaustive sweep.
  [[nodiscard]] TunedRunResult run_tuned(DslashProblem& problem, Strategy s,
                                         Variant variant = Variant::SYCL,
                                         int iterations = 100) const;

  /// The cache key run_tuned consults: this machine's fingerprint, the
  /// problem geometry, kernel "dslash", config "<strategy> <variant>".
  [[nodiscard]] tune::TuneKey tune_key(const DslashProblem& problem, Strategy s,
                                       Variant variant = Variant::SYCL) const;

  /// Functional run (no simulation): executes the chosen kernel once so its
  /// output can be compared against dslash_reference.
  void run_functional(DslashProblem& problem, Strategy s, IndexOrder o, int local_size,
                      bool use_syclcplx = false) const;

  /// Sanitized run: replay the chosen kernel under ksan (races, memcheck,
  /// init-check, perf lints).  Same kernel object the other modes launch;
  /// field extents are declared automatically.
  [[nodiscard]] ksan::SanitizerReport sanitize(DslashProblem& problem, Strategy s, IndexOrder o,
                                               int local_size, bool use_syclcplx = false,
                                               ksan::SanitizeConfig cfg = {}) const;

 private:
  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
};

}  // namespace milc
