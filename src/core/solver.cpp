#include "core/solver.hpp"

#include <cmath>
#include <cstdio>

namespace milc {

CgResult cg_solve(const std::function<void(const ColorField&, ColorField&)>& apply,
                  const ColorField& b, ColorField& x, const LatticeGeom& geom,
                  const CgOptions& opts) {
  CgResult res;
  const Parity p = b.parity();
  ColorField r(geom, p), Ap(geom, p);

  // r = b - A x
  apply(x, Ap);
  r = b;
  axpy(-1.0, Ap, r);
  ColorField pvec = r;

  const double b2 = norm2(b);
  if (b2 == 0.0) {
    x.zero();
    res.converged = true;
    return res;
  }
  double rr = norm2(r);
  const double target = opts.rel_tol * opts.rel_tol * b2;

  int it = 0;
  for (; it < opts.max_iterations && rr > target; ++it) {
    apply(pvec, Ap);
    const double pAp = dot(pvec, Ap).re;
    if (!(pAp > 0.0)) break;  // not HPD or numerical breakdown
    const double alpha = rr / pAp;
    axpy(alpha, pvec, x);
    axpy(-alpha, Ap, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, pvec);  // p = r + beta p
    rr = rr_new;
    if (opts.log_every > 0 && it % opts.log_every == 0) {
      std::printf("cg: iter %5d  rel res %.3e\n", it, std::sqrt(rr / b2));
    }
  }

  res.iterations = it;
  res.relative_residual = std::sqrt(rr / b2);
  res.converged = rr <= target;

  // True residual check.
  apply(x, Ap);
  ColorField tr = b;
  axpy(-1.0, Ap, tr);
  res.true_relative_residual = std::sqrt(norm2(tr) / b2);
  return res;
}

CgResult cg_solve(const StaggeredOperator& op, const ColorField& b, ColorField& x,
                  const CgOptions& opts) {
  return cg_solve(
      [&op](const ColorField& in, ColorField& out) { op.apply_normal(in, out); }, b, x,
      op.geom(), opts);
}

}  // namespace milc
