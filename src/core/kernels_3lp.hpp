// kernels_3lp.hpp — Three-loop Parallelism (paper §III-C).
//
// Twelve work-items per target site (s, row i, dim k); the k-loop carries a
// data dependence (four work-items accumulate into the same C(i,s)), so
// each implementation resolves the race differently:
//   * 3LP-1: work-group local memory + group barrier, collective update by
//     the k==0 work-item.
//   * 3LP-2: local memory + barrier, then every work-item atomically adds
//     its partial to global C.
//   * 3LP-3: no local memory; work-items atomically add each l-term of the
//     row product straight to global C.
//
// Barriers are realised as phase boundaries (phase 0 before the barrier,
// phase 1 after); indices are recomputed from the ids in each phase.
#pragma once

#include "core/dslash_args.hpp"
#include "core/index_orders.hpp"
#include "minisycl/traits.hpp"

namespace milc {

namespace detail3lp {

/// The pre-barrier work shared by 3LP-1 and 3LP-2: one work-item's partial
/// sum over the four link families for its (s, i, k).
template <typename Lane, ComplexScalar C>
[[nodiscard]] inline C partial_sum(Lane& lane, const DslashArgs<C>& args, std::int64_t s,
                                   int i, int k) {
  using T = complex_traits<C>;
  C acc = T::make(0.0, 0.0);
  for (int l = 0; l < kNlinks; ++l) {
    const std::int32_t n = device::load_neighbor(lane, args.neighbors, s, k, l);
    const C v = device::row_dot(lane, args, l, s, k, i, &args.b[n]);
    device::accumulate_signed(lane, acc, kStencilSigns[static_cast<std::size_t>(l)], v);
  }
  return acc;
}

}  // namespace detail3lp

/// 3LP-1: local accessor + group barrier (paper listing in §III-C).
template <Order3 O, ComplexScalar C = dcomplex>
struct Dslash3LP1Kernel {
  static constexpr int kPhases = 2;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    return {.name = O == Order3::kMajor ? "3LP-1(k)" : "3LP-1(i)",
            .regs_per_thread = 40,
            .codegen_slowdown = 1.0};
  }
  /// Local memory: one complex per work-item (the paper's 12.3 KB at 768).
  static int shared_bytes(int local_size) { return local_size * static_cast<int>(sizeof(C)); }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    const Idx3 id = decode3<O>(lane.global_id());
    const int lid = lane.local_id();

    if (phase == 0) {
      const C acc = detail3lp::partial_sum(lane, args, id.s, id.i, id.k);
      lane.template shared_store<C>(lid, acc);
      return;
    }

    // After group_barrier: the k == 0 work-item folds the four k-partials.
    // The single-sided guard compiles to predication (no divergent branch —
    // Table I row 13 reports zero for every 3LP variant); masked lanes
    // execute the same predicated instructions against their quartet's base
    // index so every address stays in bounds.
    const bool head = id.k == 0;
    const int base = lid - id.k * id.delta_k;
    lane.set_masked(!head);
    C sum = lane.template shared_load<C>(base);
    for (int k = 1; k < kNdim; ++k) {
      sum += lane.template shared_load<C>(base + k * id.delta_k);
    }
    lane.flops(6);
    lane.store(&args.c_out[id.s].c[id.i], sum);
    lane.set_masked(false);
  }
};

/// 3LP-2: local accessor + barrier, atomic update of global C (paper §III-C
/// second listing).
template <Order3 O, ComplexScalar C = dcomplex>
struct Dslash3LP2Kernel {
  static constexpr int kPhases = 2;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    return {.name = O == Order3::kMajor ? "3LP-2(k)" : "3LP-2(i)",
            .regs_per_thread = 40,
            .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) { return local_size * static_cast<int>(sizeof(C)); }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    using T = complex_traits<C>;
    const Idx3 id = decode3<O>(lane.global_id());
    const int lid = lane.local_id();

    if (phase == 0) {
      const C acc = detail3lp::partial_sum(lane, args, id.s, id.i, id.k);
      lane.template shared_store<C>(lid, acc);
      // if (k == 0) initialize C(i,s) — before the barrier (predicated).
      lane.set_masked(id.k != 0);
      lane.store(&args.c_out[id.s].c[id.i], T::make(0.0, 0.0));
      lane.set_masked(false);
      return;
    }

    // After the barrier every work-item atomically accumulates its partial.
    const C v = lane.template shared_load<C>(lid);
    double* target = reinterpret_cast<double*>(&args.c_out[id.s].c[id.i]);
    lane.atomic_add(target, T::real(v));
    lane.atomic_add(target + 1, T::imag(v));
  }
};

/// 3LP-3: atomics only, no local memory (paper §III-C third listing).
template <Order3 O, ComplexScalar C = dcomplex>
struct Dslash3LP3Kernel {
  static constexpr int kPhases = 2;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    return {.name = O == Order3::kMajor ? "3LP-3(k)" : "3LP-3(i)",
            .regs_per_thread = 40,
            .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int /*local_size*/) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    using T = complex_traits<C>;
    const Idx3 id = decode3<O>(lane.global_id());

    if (phase == 0) {
      // if (k == 0) initialize C(i,s); group_barrier(...)  (predicated)
      lane.set_masked(id.k != 0);
      lane.store(&args.c_out[id.s].c[id.i], T::make(0.0, 0.0));
      lane.set_masked(false);
      return;
    }

    double* target = reinterpret_cast<double*>(&args.c_out[id.s].c[id.i]);
    for (int l = 0; l < kNlinks; ++l) {
      const std::int32_t n = device::load_neighbor(lane, args.neighbors, id.s, id.k, l);
      const C v = device::row_dot(lane, args, l, id.s, id.k, id.i, &args.b[n]);
      const double sign = kStencilSigns[static_cast<std::size_t>(l)];
      lane.flops(2);
      lane.atomic_add(target, sign * T::real(v));
      lane.atomic_add(target + 1, sign * T::imag(v));
    }
  }
};

}  // namespace milc
