// dispatch.hpp — the one (strategy, order, complex type) -> kernel switch.
//
// Every launch mode (profiled, functional, sanitized) and every driver
// (single-device DslashRunner, multi-device shard launches) must run the
// *identical* kernel object for a given configuration; this header is the
// single place that instantiates it.  It operates on a raw DslashArgs block
// rather than a DslashProblem so callers can point it at sub-ranges — the
// multidev runner launches the same kernels over a shard's interior and
// boundary site ranges by offsetting the block's base pointers.
#pragma once

#include <stdexcept>

#include "core/kernels_1lp.hpp"
#include "core/kernels_2lp.hpp"
#include "core/kernels_3lp.hpp"
#include "core/kernels_4lp.hpp"
#include "core/strategy.hpp"

namespace milc {

namespace detail_dispatch {

using CplxC = syclcplx::complex<double>;

static_assert(sizeof(CplxC) == sizeof(dcomplex) && alignof(CplxC) == alignof(dcomplex),
              "SyclCPLX complex must be layout-compatible with dcomplex so fields can be "
              "shared between variants");

/// Reinterpret the argument block for the SyclCPLX-typed kernels.  Both
/// complex types are trivially-copyable pairs of doubles and every kernel
/// access goes through Lane::load/store (memcpy semantics), so this is
/// well-defined.
inline DslashArgs<CplxC> to_cplx(const DslashArgs<dcomplex>& a) {
  DslashArgs<CplxC> r;
  for (int l = 0; l < kNlinks; ++l) {
    r.links[l] = reinterpret_cast<const CplxC*>(a.links[l]);
  }
  r.b = reinterpret_cast<const SU3Vector<CplxC>*>(a.b);
  r.c_out = reinterpret_cast<SU3Vector<CplxC>*>(a.c_out);
  r.neighbors = a.neighbors;
  r.sites = a.sites;
  return r;
}

}  // namespace detail_dispatch

/// Instantiate the kernel selected by (strategy, order, complex type) and
/// hand it to `fn`.  The SyclCPLX variant exists for 3LP-1 only, matching
/// the paper.  Local-size validation is the caller's job (the rules depend
/// on the launch's site count, which only the caller knows).
template <typename Fn>
auto with_dslash_kernel(const DslashArgs<dcomplex>& a, Strategy s, IndexOrder o,
                        bool use_syclcplx, Fn&& fn) {
  if (use_syclcplx) {
    if (s != Strategy::LP3_1) {
      throw std::invalid_argument("the SyclCPLX variant exists for 3LP-1 only (paper IV-C)");
    }
    const DslashArgs<detail_dispatch::CplxC> ac = detail_dispatch::to_cplx(a);
    if (o == IndexOrder::kMajor) {
      return fn(Dslash3LP1Kernel<Order3::kMajor, detail_dispatch::CplxC>{.args = ac});
    }
    return fn(Dslash3LP1Kernel<Order3::iMajor, detail_dispatch::CplxC>{.args = ac});
  }

  switch (s) {
    case Strategy::LP1:
      return fn(Dslash1LPKernel<dcomplex>{.args = a});
    case Strategy::LP2:
      return fn(Dslash2LPKernel<dcomplex>{.args = a});
    case Strategy::LP3_1:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP1Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP1Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP3_2:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP2Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP2Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP3_3:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP3Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP3Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP4_1:
      if (o == IndexOrder::kMajor) return fn(Dslash4LPKernel<Order4::lp1_kMajor>{.args = a});
      return fn(Dslash4LPKernel<Order4::lp1_iMajor>{.args = a});
    case Strategy::LP4_2:
      if (o == IndexOrder::lMajor) return fn(Dslash4LPKernel<Order4::lp2_lMajor>{.args = a});
      return fn(Dslash4LPKernel<Order4::lp2_iMajor>{.args = a});
  }
  throw std::logic_error("unknown strategy");
}

}  // namespace milc
