#include "core/dslash_ref.hpp"

#include <cassert>

namespace milc {

void dslash_reference(const GaugeView& view, const NeighborTable& nbr, const ColorField& b,
                      ColorField& c) {
  assert(c.size() == view.sites());
  for (std::int64_t s = 0; s < view.sites(); ++s) {
    SU3Vector<dcomplex> acc;
    for (int k = 0; k < kNdim; ++k) {
      for (int l = 0; l < kNlinks; ++l) {
        const std::int32_t n = nbr.at(s, k, l);
        const SU3Vector<dcomplex> v = matvec(view.link(l, s, k), b[n]);
        const double sign = kStencilSigns[static_cast<std::size_t>(l)];
        acc += sign * v;
      }
    }
    c[s] = acc;
  }
}

void dslash_from_configuration(const LatticeGeom& geom, const GaugeConfiguration& cfg,
                               Parity target, const ColorField& b, ColorField& c) {
  for (std::int64_t s = 0; s < geom.half_volume(); ++s) {
    const std::int64_t f = geom.full_index_of(target, s);
    const Coords x = geom.coords(f);
    SU3Vector<dcomplex> acc;
    for (int k = 0; k < kNdim; ++k) {
      const std::int64_t fwd1 = geom.full_index(geom.displace(x, k, +1));
      const std::int64_t fwd3 = geom.full_index(geom.displace(x, k, +3));
      const std::int64_t bck1 = geom.full_index(geom.displace(x, k, -1));
      const std::int64_t bck3 = geom.full_index(geom.displace(x, k, -3));
      acc += matvec(cfg.fat(f, k), b[geom.eo_index(fwd1)]);
      acc += matvec(cfg.lng(f, k), b[geom.eo_index(fwd3)]);
      acc -= adj_matvec(cfg.fat(bck1, k), b[geom.eo_index(bck1)]);
      acc -= adj_matvec(cfg.lng(bck3, k), b[geom.eo_index(bck3)]);
    }
    c[s] = acc;
  }
}

DslashArgs<dcomplex> make_dslash_args(const DeviceGaugeLayout& gauge, const NeighborTable& nbr,
                                      const ColorField& b, ColorField& c) {
  DslashArgs<dcomplex> args;
  for (int l = 0; l < kNlinks; ++l) args.links[l] = gauge.family(l);
  args.b = b.data();
  args.c_out = c.data();
  args.neighbors = nbr.data();
  args.sites = gauge.sites();
  return args;
}

}  // namespace milc
