// kernels_1lp.hpp — One-loop Parallelism (paper §III-A).
//
// One work-item per target site; each work-item performs the full
// |l| x |k| x |i| x |j| loop nest (1146 FLOP) and holds a whole site's
// accumulator in registers — hence the 64-register estimate and the reduced
// occupancy the paper observes (Table I row 4: 47.6%).
#pragma once

#include "core/dslash_args.hpp"
#include "minisycl/traits.hpp"

namespace milc {

template <ComplexScalar C = dcomplex>
struct Dslash1LPKernel {
  static constexpr int kPhases = 1;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    return {.name = "1LP", .regs_per_thread = 64, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int /*local_size*/) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    using T = complex_traits<C>;
    const std::int64_t s = lane.global_id();

    C acc[kColors] = {T::make(0.0, 0.0), T::make(0.0, 0.0), T::make(0.0, 0.0)};
    for (int l = 0; l < kNlinks; ++l) {
      for (int k = 0; k < kNdim; ++k) {
        const std::int32_t n = device::load_neighbor(lane, args.neighbors, s, k, l);
        const SU3Vector<C>* bv = &args.b[n];
        for (int i = 0; i < kColors; ++i) {
          const C v = device::row_dot(lane, args, l, s, k, i, bv);
          device::accumulate_signed(lane, acc[i], kStencilSigns[static_cast<std::size_t>(l)], v);
        }
      }
    }
    for (int i = 0; i < kColors; ++i) lane.store(&args.c_out[s].c[i], acc[i]);
  }
};

}  // namespace milc
