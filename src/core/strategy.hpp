// strategy.hpp — enumeration and constraints of the paper's parallel
// strategies (§III) and work-item index orders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/index_orders.hpp"

namespace milc {

enum class Strategy { LP1, LP2, LP3_1, LP3_2, LP3_3, LP4_1, LP4_2 };

enum class IndexOrder { kMajor, iMajor, lMajor };

[[nodiscard]] const char* to_string(Strategy s);
[[nodiscard]] const char* to_string(IndexOrder o);

/// Work-items per target site (1, 3, 12 or 48).
[[nodiscard]] int items_per_site(Strategy s);

/// Barrier-separated phases of the kernel (1, 2 or 3).
[[nodiscard]] int phases_of(Strategy s);

/// Index orders the paper evaluates for a strategy.
[[nodiscard]] std::vector<IndexOrder> orders_of(Strategy s);

/// The local-size divisibility constraint of §III: the partial-sum quartets
/// must not straddle a work-group.  k-major 3LP needs multiples of
/// |i| x |k| = 12; i-major needs |k| = 4; 4LP needs |i| x |k| x |l| = 48.
/// All additionally need a multiple of the warp size (§IV-B).
[[nodiscard]] int local_size_multiple(Strategy s, IndexOrder o, int warp_size = 32);

/// True when (local size, global size) satisfies every §III/§IV-B rule.
[[nodiscard]] bool is_valid_local_size(Strategy s, IndexOrder o, int local_size,
                                       std::int64_t sites, int warp_size = 32);

/// The local sizes the paper sweeps for this strategy/order on a lattice
/// with `sites` target sites ("96, 192, 384, and 768" for 3LP/4LP; powers of
/// two for 1LP, which must divide the site count).
[[nodiscard]] std::vector<int> paper_local_sizes(Strategy s, IndexOrder o, std::int64_t sites);

/// Human-readable configuration label, e.g. "3LP-1 k-major /768".
[[nodiscard]] std::string config_label(Strategy s, IndexOrder o, int local_size);

/// Inverse of to_string(IndexOrder); returns false for unknown names.  Used
/// when replaying persisted tuning-cache entries, which store the order by
/// its printed name.
[[nodiscard]] bool parse_index_order(const std::string& name, IndexOrder& out);

/// All strategies in the paper's presentation order.
[[nodiscard]] const std::vector<Strategy>& all_strategies();

}  // namespace milc
