// kernels_2lp.hpp — Two-loop Parallelism (paper §III-B).
//
// Three work-items per target site (one per matrix row i); each performs
// |l| x |k| row products.  Iterations remain independent: no shared state,
// no barrier.
#pragma once

#include "core/dslash_args.hpp"
#include "minisycl/traits.hpp"

namespace milc {

template <ComplexScalar C = dcomplex>
struct Dslash2LPKernel {
  static constexpr int kPhases = 1;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    return {.name = "2LP", .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int /*local_size*/) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    using T = complex_traits<C>;
    const std::int64_t gid = lane.global_id();
    const std::int64_t s = gid / kNrow;  // int s = global_id / nrow;
    const int i = static_cast<int>(gid % kNrow);  // int i = global_id % nrow;

    C acc = T::make(0.0, 0.0);
    for (int l = 0; l < kNlinks; ++l) {
      for (int k = 0; k < kNdim; ++k) {
        const std::int32_t n = device::load_neighbor(lane, args.neighbors, s, k, l);
        const C v = device::row_dot(lane, args, l, s, k, i, &args.b[n]);
        device::accumulate_signed(lane, acc, kStencilSigns[static_cast<std::size_t>(l)], v);
      }
    }
    lane.store(&args.c_out[s].c[i], acc);
  }
};

}  // namespace milc
