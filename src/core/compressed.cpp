#include "core/compressed.hpp"

namespace milc {

CompressedGaugeDevice::CompressedGaugeDevice(const GaugeView& view) : sites_(view.sites()) {
  for (int l = 0; l < kNlinks; ++l) {
    auto& fam = data_[static_cast<std::size_t>(l)];
    fam.resize(static_cast<std::size_t>(sites_ * kNdim * 6));
    for (std::int64_t s = 0; s < sites_; ++s) {
      for (int k = 0; k < kNdim; ++k) {
        const SU3Matrix<dcomplex>& m = view.link(l, s, k);
        for (int j = 0; j < kColors; ++j) {
          for (int i = 0; i < 2; ++i) {
            fam[static_cast<std::size_t>(((s * kNdim + k) * kColors + j) * 2 + i)] =
                m.e[i][j];
          }
        }
      }
    }
  }
}

CompressedDslash::CompressedDslash(const GaugeView& view, const NeighborTable& nbr)
    : gauge_(view), nbr_(&nbr) {}

CompressedArgs CompressedDslash::make_args(const ColorField& in, ColorField& out) const {
  CompressedArgs args;
  for (int l = 0; l < kNlinks; ++l) args.links[l] = gauge_.family(l);
  args.b = in.data();
  args.c_out = out.data();
  args.neighbors = nbr_->data();
  args.sites = gauge_.sites();
  return args;
}

namespace {

minisycl::LaunchSpec make_spec(std::int64_t sites, int local_size) {
  minisycl::LaunchSpec spec;
  spec.global_size = sites * 12;
  spec.local_size = local_size;
  spec.shared_bytes = Dslash3LP1Recon12Kernel::shared_bytes(local_size);
  spec.num_phases = Dslash3LP1Recon12Kernel::kPhases;
  spec.traits = Dslash3LP1Recon12Kernel::traits();
  return spec;
}

}  // namespace

void CompressedDslash::apply(const ColorField& in, ColorField& out, int local_size) const {
  Dslash3LP1Recon12Kernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order);
  q.submit(make_spec(sites(), local_size), kernel);
}

gpusim::KernelStats CompressedDslash::profile(const ColorField& in, ColorField& out,
                                              int local_size, gpusim::MachineModel machine,
                                              gpusim::Calibration cal) const {
  Dslash3LP1Recon12Kernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::profiled, minisycl::QueueOrder::in_order, machine,
                    cal);
  return q.submit(make_spec(sites(), local_size), kernel,
                  "3LP-1 recon-12 /" + std::to_string(local_size));
}

ksan::SanitizerReport CompressedDslash::sanitize(const ColorField& in, ColorField& out,
                                                 int local_size,
                                                 ksan::SanitizeConfig cfg) const {
  Dslash3LP1Recon12Kernel kernel{make_args(in, out)};
  const auto n = static_cast<std::size_t>(sites());
  for (int l = 0; l < kNlinks; ++l) {
    cfg.regions.push_back(ksan::region_of(kernel.args.links[l], n * kNdim * 6));
  }
  cfg.regions.push_back(ksan::region_of(kernel.args.b, n));
  cfg.regions.push_back(ksan::region_of(kernel.args.c_out, n));
  cfg.regions.push_back(ksan::region_of(kernel.args.neighbors, n * kNeighbors));
  return ksan::sanitize_launch(make_spec(sites(), local_size), kernel, std::move(cfg),
                               "3LP-1 recon-12 /" + std::to_string(local_size));
}

}  // namespace milc
