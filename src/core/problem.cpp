#include "core/problem.hpp"

#include "core/dslash_ref.hpp"

namespace milc {

DslashProblem::DslashProblem(int L, std::uint64_t seed, Parity target)
    : DslashProblem(Coords{L, L, L, L}, seed, target) {}

DslashProblem::DslashProblem(const Coords& dims, std::uint64_t seed, Parity target)
    : geom_(dims),
      target_(target),
      cfg_(geom_),
      view_(),
      nbr_(geom_, target),
      b_(geom_, opposite(target)),
      c_(geom_, target) {
  cfg_.fill_random(seed);
  view_ = GaugeView(geom_, cfg_, target);
  dev_gauge_ = DeviceGaugeLayout(view_);
  b_.fill_random(seed ^ 0x9e3779b97f4a7c15ull);
  c_.zero();
}

DslashArgs<dcomplex> DslashProblem::args() {
  return make_dslash_args(dev_gauge_, nbr_, b_, c_);
}

}  // namespace milc
