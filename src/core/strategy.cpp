#include "core/strategy.hpp"

#include <numeric>

namespace milc {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::LP1: return "1LP";
    case Strategy::LP2: return "2LP";
    case Strategy::LP3_1: return "3LP-1";
    case Strategy::LP3_2: return "3LP-2";
    case Strategy::LP3_3: return "3LP-3";
    case Strategy::LP4_1: return "4LP-1";
    case Strategy::LP4_2: return "4LP-2";
  }
  return "?";
}

const char* to_string(IndexOrder o) {
  switch (o) {
    case IndexOrder::kMajor: return "k-major";
    case IndexOrder::iMajor: return "i-major";
    case IndexOrder::lMajor: return "l-major";
  }
  return "?";
}

int items_per_site(Strategy s) {
  switch (s) {
    case Strategy::LP1: return 1;
    case Strategy::LP2: return 3;
    case Strategy::LP3_1:
    case Strategy::LP3_2:
    case Strategy::LP3_3: return 12;
    case Strategy::LP4_1:
    case Strategy::LP4_2: return 48;
  }
  return 1;
}

int phases_of(Strategy s) {
  switch (s) {
    case Strategy::LP1:
    case Strategy::LP2: return 1;
    case Strategy::LP3_1:
    case Strategy::LP3_2:
    case Strategy::LP3_3: return 2;
    case Strategy::LP4_1:
    case Strategy::LP4_2: return 3;
  }
  return 1;
}

std::vector<IndexOrder> orders_of(Strategy s) {
  switch (s) {
    case Strategy::LP1:
    case Strategy::LP2: return {IndexOrder::kMajor};  // single order (paper Fig. 6)
    case Strategy::LP3_1:
    case Strategy::LP3_2:
    case Strategy::LP3_3:
    case Strategy::LP4_1: return {IndexOrder::kMajor, IndexOrder::iMajor};
    case Strategy::LP4_2: return {IndexOrder::lMajor, IndexOrder::iMajor};
  }
  return {};
}

int local_size_multiple(Strategy s, IndexOrder o, int warp_size) {
  int algo = 1;
  switch (s) {
    case Strategy::LP1: algo = 1; break;
    case Strategy::LP2: algo = kNrow; break;
    case Strategy::LP3_1:
    case Strategy::LP3_2:
    case Strategy::LP3_3:
      algo = (o == IndexOrder::kMajor) ? kNrow * kNdimIdx : kNdimIdx;
      break;
    case Strategy::LP4_1:
    case Strategy::LP4_2: algo = kNrow * kNdimIdx * kNmat; break;
  }
  return std::lcm(algo, warp_size);
}

bool is_valid_local_size(Strategy s, IndexOrder o, int local_size, std::int64_t sites,
                         int warp_size) {
  if (local_size <= 0 || local_size > 1024) return false;
  if (local_size % local_size_multiple(s, o, warp_size) != 0) return false;
  const std::int64_t global = sites * items_per_site(s);
  return global % local_size == 0;
}

std::vector<int> paper_local_sizes(Strategy s, IndexOrder o, std::int64_t sites) {
  const std::vector<int> pool = (s == Strategy::LP1)
                                    ? std::vector<int>{64, 128, 256, 512}
                                    : std::vector<int>{96, 192, 384, 768};
  std::vector<int> out;
  for (int ls : pool) {
    if (is_valid_local_size(s, o, ls, sites)) out.push_back(ls);
  }
  return out;
}

std::string config_label(Strategy s, IndexOrder o, int local_size) {
  std::string label = to_string(s);
  if (orders_of(s).size() > 1) {
    label += ' ';
    label += to_string(o);
  }
  label += " /";
  label += std::to_string(local_size);
  return label;
}

bool parse_index_order(const std::string& name, IndexOrder& out) {
  for (IndexOrder o : {IndexOrder::kMajor, IndexOrder::iMajor, IndexOrder::lMajor}) {
    if (name == to_string(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> k = {Strategy::LP1,   Strategy::LP2,   Strategy::LP3_1,
                                          Strategy::LP3_2, Strategy::LP3_3, Strategy::LP4_1,
                                          Strategy::LP4_2};
  return k;
}

}  // namespace milc
