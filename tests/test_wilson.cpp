// Wilson-fermion extension: gamma algebra, projector derivation, and the
// three Dslash implementations (full-gamma reference, projected host,
// device kernel).
#include <gtest/gtest.h>

#include "wilson/wilson.hpp"

namespace milc::wilson {
namespace {

dcomplex spin_entry(const SpinMatrix& m, int i, int j) {
  return m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
}

SpinMatrix spin_mul(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix r{};
  for (int i = 0; i < kSpins; ++i) {
    for (int j = 0; j < kSpins; ++j) {
      dcomplex acc{0.0, 0.0};
      for (int k = 0; k < kSpins; ++k) cmac(acc, spin_entry(a, i, k), spin_entry(b, k, j));
      r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
    }
  }
  return r;
}

void expect_identity(const SpinMatrix& m, double scale = 1.0) {
  for (int i = 0; i < kSpins; ++i) {
    for (int j = 0; j < kSpins; ++j) {
      EXPECT_NEAR(spin_entry(m, i, j).re, i == j ? scale : 0.0, 1e-12);
      EXPECT_NEAR(spin_entry(m, i, j).im, 0.0, 1e-12);
    }
  }
}

TEST(Gamma, SquaresToIdentity) {
  for (int mu = 0; mu < 4; ++mu) expect_identity(spin_mul(gamma(mu), gamma(mu)));
}

TEST(Gamma, CliffordAlgebraAnticommutes) {
  for (int mu = 0; mu < 4; ++mu) {
    for (int nu = mu + 1; nu < 4; ++nu) {
      const SpinMatrix ab = spin_mul(gamma(mu), gamma(nu));
      const SpinMatrix ba = spin_mul(gamma(nu), gamma(mu));
      for (int i = 0; i < kSpins; ++i) {
        for (int j = 0; j < kSpins; ++j) {
          EXPECT_NEAR(spin_entry(ab, i, j).re + spin_entry(ba, i, j).re, 0.0, 1e-12);
          EXPECT_NEAR(spin_entry(ab, i, j).im + spin_entry(ba, i, j).im, 0.0, 1e-12);
        }
      }
    }
  }
}

TEST(Gamma, Gamma5SquaresToIdentityAndAnticommutes) {
  expect_identity(spin_mul(gamma5(), gamma5()));
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix ab = spin_mul(gamma5(), gamma(mu));
    const SpinMatrix ba = spin_mul(gamma(mu), gamma5());
    for (int i = 0; i < kSpins; ++i) {
      for (int j = 0; j < kSpins; ++j) {
        EXPECT_NEAR(spin_entry(ab, i, j).re + spin_entry(ba, i, j).re, 0.0, 1e-12);
      }
    }
  }
}

TEST(Gamma, ProjectorIsHalfOfRankTwoProjection) {
  // (1 -+ gamma)^2 = 2 (1 -+ gamma): idempotent up to the factor 2.
  for (int mu = 0; mu < 4; ++mu) {
    for (int sign : {+1, -1}) {
      const SpinMatrix m = one_minus_gamma(mu, static_cast<double>(sign));
      const SpinMatrix mm = spin_mul(m, m);
      for (int i = 0; i < kSpins; ++i) {
        for (int j = 0; j < kSpins; ++j) {
          EXPECT_NEAR(spin_entry(mm, i, j).re, 2.0 * spin_entry(m, i, j).re, 1e-12);
          EXPECT_NEAR(spin_entry(mm, i, j).im, 2.0 * spin_entry(m, i, j).im, 1e-12);
        }
      }
    }
  }
}

TEST(Gamma, DerivedProjectorTablesReproduceTheMatrix) {
  // Apply (1 -+ gamma) to spin unit vectors both ways and compare.
  for (int mu = 0; mu < 4; ++mu) {
    for (int sign : {+1, -1}) {
      const SpinMatrix m = one_minus_gamma(mu, static_cast<double>(sign));
      const Projector& p = projector(mu, sign);
      for (int e = 0; e < kSpins; ++e) {
        dcomplex psi[kSpins] = {};
        psi[e] = {1.0, 0.0};
        // Via tables: h_s = psi_s + phase*psi[perm]; lower = rphase*h[rperm].
        dcomplex out[kSpins];
        for (int s = 0; s < 2; ++s) {
          out[s] = psi[s] + cmul(p.phase[static_cast<std::size_t>(s)],
                                 psi[p.perm[static_cast<std::size_t>(s)]]);
        }
        for (int s = 0; s < 2; ++s) {
          out[2 + s] = cmul(p.rphase[static_cast<std::size_t>(s)],
                            out[p.rperm[static_cast<std::size_t>(s)]]);
        }
        for (int d = 0; d < kSpins; ++d) {
          EXPECT_NEAR(out[d].re, spin_entry(m, d, e).re, 1e-12) << mu << sign << d << e;
          EXPECT_NEAR(out[d].im, spin_entry(m, d, e).im, 1e-12) << mu << sign << d << e;
        }
      }
    }
  }
}

// ------------------------------------------------------------- operator ----

struct WilsonSetup {
  LatticeGeom geom{4};
  GaugeConfiguration cfg{geom};
  GaugeView view;
  NeighborTable nbr;
  DeviceGaugeLayout dev;
  WilsonField in{geom, Parity::Odd};

  WilsonSetup() : geom(4), cfg(geom) {
    cfg.fill_random(91);
    view = GaugeView(geom, cfg, Parity::Even);
    nbr = NeighborTable(geom, Parity::Even);
    dev = DeviceGaugeLayout(view);
    in.fill_random(92);
  }
};

TEST(WilsonDslash, ProjectedMatchesFullGammaReference) {
  WilsonSetup w;
  WilsonField a(w.geom, Parity::Even), b(w.geom, Parity::Even);
  wilson_reference(w.view, w.nbr, w.in, a);
  wilson_projected(w.view, w.nbr, w.in, b);
  EXPECT_GT(norm2(a), 1.0);
  EXPECT_LT(max_abs_diff(a, b), 1e-11);
}

TEST(WilsonDslash, DeviceKernelMatchesReference) {
  WilsonSetup w;
  WilsonField ref(w.geom, Parity::Even), out(w.geom, Parity::Even);
  wilson_reference(w.view, w.nbr, w.in, ref);
  WilsonDslash d(w.dev, w.nbr);
  d.apply(w.in, out, 128);
  EXPECT_LT(max_abs_diff(out, ref), 1e-11);
}

TEST(WilsonDslash, Linearity) {
  WilsonSetup w;
  WilsonField in2(w.geom, Parity::Odd);
  in2.fill_random(93);
  WilsonField sum(w.geom, Parity::Odd);
  for (std::int64_t i = 0; i < sum.size(); ++i) {
    sum[i] = w.in[i];
    sum[i] += in2[i];
  }
  WilsonField d1(w.geom, Parity::Even), d2(w.geom, Parity::Even), ds(w.geom, Parity::Even);
  wilson_reference(w.view, w.nbr, w.in, d1);
  wilson_reference(w.view, w.nbr, in2, d2);
  wilson_reference(w.view, w.nbr, sum, ds);
  for (std::int64_t i = 0; i < d1.size(); ++i) d1[i] += d2[i];
  EXPECT_LT(max_abs_diff(ds, d1), 1e-10);
}

TEST(WilsonDslash, Gamma5Hermiticity) {
  // gamma5 D_eo gamma5 = (D_oe)^dagger:  <v, g5 D_eo g5 w> = conj(<w, g5 D_oe g5 v>).
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(94);
  GaugeView ve(geom, cfg, Parity::Even), vo(geom, cfg, Parity::Odd);
  NeighborTable ne(geom, Parity::Even), no(geom, Parity::Odd);

  WilsonField v(geom, Parity::Even), w(geom, Parity::Odd);
  v.fill_random(95);
  w.fill_random(96);

  WilsonField Dw(geom, Parity::Even), Dv(geom, Parity::Odd);
  WilsonField w5 = w;
  apply_gamma5(w5);
  wilson_reference(ve, ne, w5, Dw);
  apply_gamma5(Dw);                 // g5 D_eo g5 w
  wilson_reference(vo, no, v, Dv);  // D_oe v

  // <v, g5 D_eo g5 w> = <v, (D_oe)^dag w> = conj(<w, D_oe v>).
  const dcomplex lhs = dot(v, Dw);
  const dcomplex rhs = dot(w, Dv);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8);
  EXPECT_NEAR(lhs.im, -rhs.im, 1e-8);
}

TEST(WilsonDslash, HigherArithmeticIntensityThanStaggered) {
  // The intro's point: Wilson moves more FLOPs per byte.
  const double wilson_bytes = 8 * 144.0 + 8 * 192.0 + 192.0;   // links + spinors + store
  const double stag_bytes = 16 * 144.0 + 16 * 48.0 + 48.0;
  const double wilson_ai = wilson_flops_per_site() / wilson_bytes;
  const double stag_ai = 1146.0 / stag_bytes;
  EXPECT_GT(wilson_ai, 1.5 * stag_ai);
}

TEST(WilsonDslash, ProfiledRunProducesStats) {
  WilsonSetup w;
  WilsonField out(w.geom, Parity::Even);
  WilsonDslash d(w.dev, w.nbr);
  const auto st = d.profile(w.in, out, 128);
  EXPECT_GT(st.duration_us, 0.0);
  EXPECT_EQ(st.counters.divergent_branches, 0u);
  EXPECT_NEAR(static_cast<double>(st.counters.flops),
              wilson_flops_per_site() * static_cast<double>(w.geom.half_volume()), 1.0);
  // Whole-site spinor accumulators: register-limited like 1LP, only more so.
  EXPECT_STREQ(st.occupancy.limiter, "registers");
}

}  // namespace
}  // namespace milc::wilson
