// test_sharded_cg.cpp — checkpointed CG over the sharded multi-device
// Dslash: fault-free bit-identity with cg_solve, link-storm transparency,
// device-loss failover with checkpoint restart, and seed replay.
//
// The strongest assertions lean on two exactness properties proved
// elsewhere in the suite: the sharded functional Dslash equals the
// single-device one bit for bit on any grid, and link-level recovery
// restores the exact wire bytes.  Together they make entire *solver
// trajectories* bit-reproducible — under a link storm, and even across a
// mid-solve failover onto a smaller grid.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "multidev/sharded_cg.hpp"

namespace milc::multidev {
namespace {

using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

// Smallest multidev-able asymmetric lattice: split dim 3 (extent 12 ->
// local 6 = 2 * kHaloDepth), unsplit extents stay small and even.
const Coords kDims{4, 4, 4, 12};
constexpr std::uint64_t kGaugeSeed = 31;
constexpr double kMass = 0.5;

ShardedCgConfig quick_config() {
  ShardedCgConfig cfg;
  cfg.cg.rel_tol = 1e-8;
  cfg.cg.max_iterations = 400;
  cfg.checkpoint_interval = 8;
  // Tight audit: restore as soon as the true residual drifts 100x from the
  // recursion, bounding what an un-audited corruption can leave behind.
  cfg.residual_audit_factor = 100.0;
  return cfg;
}

/// Source and zeroed guess for the solves.
ColorField make_source(const LatticeGeom& geom) {
  ColorField b(geom, Parity::Even);
  b.fill_random(77);
  return b;
}

TEST(ShardedCg, ApplyMatchesReferenceOperator) {
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  ColorField in(solver.geom(), Parity::Even);
  in.fill_random(5);
  ColorField via_kernels(solver.geom(), Parity::Even);
  ColorField via_reference(solver.geom(), Parity::Even);
  solver.apply_normal(in, via_kernels);
  solver.apply_reference(in, via_reference);
  EXPECT_LT(max_abs_diff(via_kernels, via_reference), 1e-9);

  // And Hermiticity of the sharded apply — the property the ABFT check uses.
  ColorField y(solver.geom(), Parity::Even);
  y.fill_random(6);
  ColorField Ay(solver.geom(), Parity::Even);
  solver.apply_normal(y, Ay);
  const dcomplex yAx = dot(y, via_kernels), xAy = dot(in, Ay);
  EXPECT_NEAR(yAx.re, xAy.re, 1e-7);
  EXPECT_NEAR(yAx.im, -xAy.im, 1e-7);
}

TEST(ShardedCg, FaultFreeSolveIsBitForBitCgSolve) {
  // The whole recovery apparatus (ABFT dots, checkpoint audits, snapshots)
  // must be trajectory-neutral: with no faults, solve() is *exactly*
  // cg_solve over the same sharded apply — iterations, residuals, and every
  // bit of the solution.
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  const ColorField b = make_source(solver.geom());

  ColorField x_ref(solver.geom(), Parity::Even);
  const CgResult ref = cg_solve(
      [&solver](const ColorField& in, ColorField& out) { solver.apply_normal(in, out); }, b,
      x_ref, solver.geom(), quick_config().cg);

  ShardedCgSolver solver2(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                          quick_config());
  ColorField x(solver2.geom(), Parity::Even);
  const ShardedCgResult res = solver2.solve(b, x);

  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_EQ(res.cg.iterations, ref.iterations);
  EXPECT_EQ(res.cg.relative_residual, ref.relative_residual);
  EXPECT_EQ(res.cg.true_relative_residual, ref.true_relative_residual);
  EXPECT_EQ(max_abs_diff(x, x_ref), 0.0);
  EXPECT_TRUE(res.recovered_all);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_EQ(res.recomputes, 0);
  EXPECT_EQ(res.failovers_observed, 0);
  EXPECT_GT(res.checkpoints_taken, 0);
  EXPECT_TRUE(res.faults.empty());
}

TEST(ShardedCg, SolutionSolvesTheReferenceSystem) {
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  const ColorField b = make_source(solver.geom());
  ColorField x(solver.geom(), Parity::Even);
  const ShardedCgResult res = solver.solve(b, x);
  ASSERT_TRUE(res.cg.converged);

  ColorField Ax(solver.geom(), Parity::Even);
  solver.apply_reference(x, Ax);
  ColorField r = b;
  axpy(-1.0, Ax, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 10 * quick_config().cg.rel_tol);
}

TEST(ShardedCg, LinkStormSolveIsBitForBitTheCleanSolve) {
  // Link faults are healed below the solver (checksummed retransmission
  // restores the exact bytes), so a storm-lashed solve must follow the
  // clean trajectory exactly — same iterate sequence, same solution bits.
  ShardedCgSolver clean(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                        quick_config());
  const ColorField b = make_source(clean.geom());
  ColorField x_clean(clean.geom(), Parity::Even);
  const ShardedCgResult clean_res = clean.solve(b, x_clean);
  ASSERT_TRUE(clean_res.cg.converged);

  ShardedCgSolver stormy(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  ColorField x_storm(stormy.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 2024;
  plan.p_msg_drop = 0.02;
  plan.p_msg_corrupt = 0.02;
  plan.p_msg_delay = 0.05;
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = stormy.solve(b, x_storm);

  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_TRUE(res.recovered_all);
  EXPECT_EQ(res.cg.iterations, clean_res.cg.iterations);
  EXPECT_EQ(max_abs_diff(x_storm, x_clean), 0.0)
      << "link-level recovery must be invisible to the solver";
  EXPECT_FALSE(res.faults.empty()) << "the storm must actually fire";
  EXPECT_GT(res.recovery_us, 0.0);
  EXPECT_EQ(res.restarts, 0) << "link faults heal below the checkpoint tier";
}

TEST(ShardedCg, DeviceLossTriggersFailoverAndCheckpointRestart) {
  ShardedCgSolver clean(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                        quick_config());
  const ColorField b = make_source(clean.geom());
  ColorField x_clean(clean.geom(), Parity::Even);
  const ShardedCgResult clean_res = clean.solve(b, x_clean);
  ASSERT_TRUE(clean_res.cg.converged);

  // Lose a device mid-solve: each apply consults 2 devices per Dslash run
  // (2 runs per apply), so occurrence ~40 lands around iteration 10.
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  ColorField x(solver.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 5;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 40, 1, "device r"});
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = solver.solve(b, x);

  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_TRUE(res.recovered_all);
  EXPECT_GE(res.failovers_observed, 1);
  EXPECT_GE(res.restarts, 1) << "failover must restore the last checkpoint";
  EXPECT_EQ(res.final_grid.total(), 1);
  EXPECT_EQ(solver.grid().total(), 1) << "the solver adopts the surviving grid";
  ASSERT_EQ(res.faults.size(), 1u);
  EXPECT_EQ(res.faults[0].kind, FaultKind::device_loss);

  // Grid-independent exactness makes the replayed trajectory identical to
  // the clean one: the solution is bit-for-bit the clean solution.
  EXPECT_EQ(max_abs_diff(x, x_clean), 0.0);
  bool restored = false;
  for (const SolverEvent& ev : res.events) {
    if (ev.kind == "restore") restored = true;
  }
  EXPECT_TRUE(restored);
}

TEST(ShardedCg, MultiNodeSolveIsBitForBitTheIslandSolve) {
  // Moving the two shards onto separate nodes reroutes every halo over the
  // fabric tier — a pricing change only.  The whole solver trajectory must
  // be bit-identical to the single-island solve.
  ShardedCgSolver island(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  const ColorField b = make_source(island.geom());
  ColorField x_island(island.geom(), Parity::Even);
  const ShardedCgResult island_res = island.solve(b, x_island);
  ASSERT_TRUE(island_res.cg.converged);

  ShardedCgConfig cfg = quick_config();
  cfg.topo = gpusim::cluster(2, 1);
  ShardedCgSolver fabric(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), cfg);
  ColorField x_fabric(fabric.geom(), Parity::Even);
  const ShardedCgResult fabric_res = fabric.solve(b, x_fabric);

  ASSERT_TRUE(fabric_res.cg.converged) << fabric_res.summary();
  EXPECT_EQ(fabric_res.cg.iterations, island_res.cg.iterations);
  EXPECT_EQ(fabric_res.cg.relative_residual, island_res.cg.relative_residual);
  EXPECT_EQ(max_abs_diff(x_fabric, x_island), 0.0)
      << "placement must never change the solve";
  EXPECT_TRUE(fabric_res.faults.empty());
  EXPECT_EQ(fabric_res.restarts, 0);
}

TEST(ShardedCg, NodeLossMidSolveRestoresAndConvergesBitForBit) {
  // One shard per node: losing node n1 takes its device with it.  The
  // hardened runner fails over to the lone survivor, the solver restores its
  // last checkpoint, and grid-independent exactness makes the replayed
  // trajectory — and the solution — bit-identical to the clean solve.
  ShardedCgConfig cfg = quick_config();
  cfg.topo = gpusim::cluster(2, 1);
  ShardedCgSolver clean(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), cfg);
  const ColorField b = make_source(clean.geom());
  ColorField x_clean(clean.geom(), Parity::Even);
  const ShardedCgResult clean_res = clean.solve(b, x_clean);
  ASSERT_TRUE(clean_res.cg.converged);

  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), cfg);
  ColorField x(solver.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 5;
  plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 30, 1, "node n1"});
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = solver.solve(b, x);

  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_TRUE(res.recovered_all);
  EXPECT_GE(res.failovers_observed, 1);
  EXPECT_GE(res.restarts, 1) << "node loss must restore the last checkpoint";
  EXPECT_EQ(res.final_grid.total(), 1);
  ASSERT_EQ(res.faults.size(), 1u);
  EXPECT_EQ(res.faults[0].kind, FaultKind::node_loss);
  EXPECT_EQ(max_abs_diff(x, x_clean), 0.0);
}

TEST(ShardedCg, BitFlipCorruptionIsCaughtAndTheSolveStillConverges) {
  // ECC-style flips land in the live solver vectors during kernel
  // completions.  The ABFT identity catches inconsistent applies
  // (recompute); drifted state is caught by the checkpoint audit (restore).
  // Either way the solve must converge to the true solution — checked
  // against the serial reference, not against the recursion.  The burst is
  // scheduled (finite) rather than probabilistic: a flip rate that persists
  // forever re-corrupts state after every restore and no restart budget can
  // outrun it.
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  const ColorField b = make_source(solver.geom());
  ColorField x(solver.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 12;
  plan.schedule.push_back(ScheduledFault{FaultKind::bit_flip, 120, 6, ""});
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = solver.solve(b, x);

  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_TRUE(res.recovered_all);
  EXPECT_FALSE(res.faults.empty()) << "the flip storm must actually fire";
  EXPECT_GT(res.recomputes + res.restarts, 0)
      << "at least one flip must have been caught by a recovery tier";

  // An escaped low-amplitude flip is bounded by the audit factor, so the
  // reference residual can sit up to ~audit_factor above the recursion's.
  ColorField Ax(solver.geom(), Parity::Even);
  solver.apply_reference(x, Ax);
  ColorField r = b;
  axpy(-1.0, Ax, r);
  EXPECT_LT(std::sqrt(norm2(r) / norm2(b)), 1e3 * quick_config().cg.rel_tol);
}

TEST(ShardedCg, StormSolveReplaysBitForBitFromItsSeed) {
  auto run_once = [] {
    ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                           quick_config());
    const ColorField b = make_source(solver.geom());
    ColorField x(solver.geom(), Parity::Even);
    FaultPlan plan;
    plan.seed = 777;
    plan.p_msg_drop = 0.02;
    plan.p_msg_corrupt = 0.02;
    plan.p_bit_flip = 0.002;
    ScopedFaultInjection fi(plan);
    ShardedCgResult res = solver.solve(b, x);
    return std::make_pair(std::move(res), x);
  };
  const auto [r1, x1] = run_once();
  const auto [r2, x2] = run_once();

  EXPECT_EQ(max_abs_diff(x1, x2), 0.0);
  EXPECT_EQ(r1.cg.iterations, r2.cg.iterations);
  EXPECT_EQ(r1.cg.relative_residual, r2.cg.relative_residual);
  EXPECT_EQ(r1.applies, r2.applies);
  EXPECT_EQ(r1.recomputes, r2.recomputes);
  EXPECT_EQ(r1.restarts, r2.restarts);
  ASSERT_EQ(r1.faults.size(), r2.faults.size());
  for (std::size_t i = 0; i < r1.faults.size(); ++i) {
    EXPECT_EQ(r1.faults[i].kind, r2.faults[i].kind);
    EXPECT_EQ(r1.faults[i].site, r2.faults[i].site);
    EXPECT_EQ(r1.faults[i].occurrence, r2.faults[i].occurrence);
  }
}

TEST(ShardedCg, RestartExhaustionReportsStructuredFailure) {
  // A fault the recovery ladder cannot outrun — every kernel launch sticks
  // forever, so retries, strategy fallbacks and failovers all fail on every
  // grid — must exhaust the restart budget and surface a *structured*
  // failure: recovered_all=false, converged=false, and the summary names
  // the exhaustion.  Never a crash, never a silent wrong answer.
  ShardedCgConfig cfg = quick_config();
  cfg.max_restarts = 2;
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), cfg);
  const ColorField b = make_source(solver.geom());
  ColorField x(solver.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 5;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::sticky_fault, 0, 100'000'000, "dslash-"});
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = solver.solve(b, x);

  EXPECT_FALSE(res.recovered_all);
  EXPECT_FALSE(res.cg.converged);
  EXPECT_FALSE(res.cancelled) << "exhaustion is a failure, not a cancellation";
  EXPECT_LE(res.restarts, cfg.max_restarts);
  EXPECT_FALSE(res.faults.empty());
  EXPECT_NE(res.summary().find("RECOVERY EXHAUSTED"), std::string::npos)
      << res.summary();
}

TEST(ShardedCg, AsyncCheckpointFaultFreeSolveIsBitForBitTheSyncSolve) {
  // Async checkpointing moves the audit apply off the critical path; it must
  // not move the *trajectory*.  Fault-free, the async solve produces the
  // same iterates and the same solution bits as the synchronous solve, with
  // the audit applies accounted as hidden (overlapped) work.
  ShardedCgSolver sync_solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                              quick_config());
  const ColorField b = make_source(sync_solver.geom());
  ColorField x_sync(sync_solver.geom(), Parity::Even);
  const ShardedCgResult sync_res = sync_solver.solve(b, x_sync);
  ASSERT_TRUE(sync_res.cg.converged);

  ShardedCgConfig acfg = quick_config();
  acfg.async_checkpoint = true;
  ShardedCgSolver async_solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                               acfg);
  ColorField x_async(async_solver.geom(), Parity::Even);
  const ShardedCgResult async_res = async_solver.solve(b, x_async);

  ASSERT_TRUE(async_res.cg.converged) << async_res.summary();
  EXPECT_EQ(async_res.cg.iterations, sync_res.cg.iterations);
  EXPECT_EQ(max_abs_diff(x_async, x_sync), 0.0);

  // The overhead split: same audit cadence, but the async audits are hidden.
  EXPECT_GT(async_res.hidden_applies, 0);
  EXPECT_EQ(async_res.hidden_applies, async_res.checkpoint_applies);
  EXPECT_GT(async_res.snapshots_promoted, 0);
  EXPECT_LE(async_res.snapshots_staged - async_res.snapshots_promoted, 1)
      << "fault-free, every audited staging promotes; at most the final one "
         "can still be pending when the solve converges";
  EXPECT_EQ(sync_res.hidden_applies, 0) << "sync audits stay on the critical path";
  EXPECT_LT(async_res.applies - async_res.hidden_applies, sync_res.applies)
      << "the critical path must shorten at equal cadence";
}

TEST(ShardedCg, AsyncCheckpointDeviceLossRestoresBitForBit) {
  // The promotion rule under test: only an *audited* staged state becomes
  // the durable snapshot, so a mid-window failover restores a consistent
  // state (possibly one cadence further back) and the replayed trajectory is
  // still bit-identical to the clean solve.
  ShardedCgConfig acfg = quick_config();
  acfg.async_checkpoint = true;
  ShardedCgSolver clean(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), acfg);
  const ColorField b = make_source(clean.geom());
  ColorField x_clean(clean.geom(), Parity::Even);
  const ShardedCgResult clean_res = clean.solve(b, x_clean);
  ASSERT_TRUE(clean_res.cg.converged);

  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2), acfg);
  ColorField x(solver.geom(), Parity::Even);
  FaultPlan plan;
  plan.seed = 5;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 40, 1, "device r"});
  ScopedFaultInjection fi(plan);
  const ShardedCgResult res = solver.solve(b, x);

  ASSERT_TRUE(res.cg.converged) << res.summary();
  EXPECT_TRUE(res.recovered_all);
  EXPECT_GE(res.failovers_observed, 1);
  EXPECT_GE(res.restarts, 1);
  EXPECT_GE(res.snapshots_promoted, 1)
      << "the restore must have had an audited snapshot to land on";
  EXPECT_EQ(res.final_grid.total(), 1);
  EXPECT_EQ(max_abs_diff(x, x_clean), 0.0);
}

TEST(ShardedCg, ZeroSourceShortCircuits) {
  ShardedCgSolver solver(kDims, kGaugeSeed, kMass, PartitionGrid::along(3, 2),
                         quick_config());
  ColorField b(solver.geom(), Parity::Even);  // all zeros
  ColorField x(solver.geom(), Parity::Even);
  x.fill_random(9);
  const ShardedCgResult res = solver.solve(b, x);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_EQ(res.cg.iterations, 0);
  EXPECT_EQ(norm2(x), 0.0);
}

}  // namespace
}  // namespace milc::multidev
