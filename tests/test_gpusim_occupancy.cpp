// Occupancy-calculator tests, anchored on the paper's Table I values.
#include <gtest/gtest.h>

#include "gpusim/occupancy.hpp"
#include "gpusim/roofline.hpp"
#include "gpusim/timing.hpp"

namespace gpusim {
namespace {

LaunchConfig cfg(std::int64_t global, int local, int shared, int regs) {
  LaunchConfig c;
  c.global_size = global;
  c.local_size = local;
  c.shared_bytes_per_group = shared;
  c.regs_per_thread = regs;
  return c;
}

TEST(Occupancy, ThreadLimited768) {
  // 3LP-1 at local 768 with 12.3 KB shared and 40 regs: 2 groups/SM = 1536
  // of 2048 threads -> 75% theoretical (paper Table I: ~74% achieved).
  const MachineModel m = a100();
  const Calibration cal;
  const auto occ = compute_occupancy(m, cal, cfg(6291456, 768, 12288, 40));
  EXPECT_EQ(occ.groups_per_sm, 2);
  EXPECT_EQ(occ.warps_per_sm, 48);
  EXPECT_DOUBLE_EQ(occ.theoretical, 0.75);
  EXPECT_STREQ(occ.limiter, "threads");
  EXPECT_GT(occ.achieved, 0.70);
  EXPECT_LE(occ.achieved, 0.75);
}

TEST(Occupancy, RegisterLimited1LP) {
  // 1LP at local 256 with 64 registers: 64*32 regs/warp -> 32 warps by regs
  // -> 4 groups of 8 warps -> 50% theoretical (paper: 47.6% achieved).
  const MachineModel m = a100();
  const Calibration cal;
  const auto occ = compute_occupancy(m, cal, cfg(524288, 256, 0, 64));
  EXPECT_EQ(occ.groups_per_sm, 4);
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.theoretical, 0.5);
  EXPECT_STREQ(occ.limiter, "registers");
  EXPECT_NEAR(occ.achieved, 0.476, 0.03);
}

TEST(Occupancy, SharedMemoryLimited) {
  const MachineModel m = a100();
  const Calibration cal;
  // 96 KB per group: only one group fits the 164 KB carve-out.
  const auto occ = compute_occupancy(m, cal, cfg(128 * 108, 128, 96 * 1024, 32));
  EXPECT_EQ(occ.groups_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "shared-memory");
}

TEST(Occupancy, GroupCountLimit) {
  const MachineModel m = a100();
  const Calibration cal;
  // Tiny groups: residency capped by the 32-group hardware limit.
  const auto occ = compute_occupancy(m, cal, cfg(32768, 32, 0, 16));
  EXPECT_EQ(occ.groups_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.theoretical, 0.5);
}

TEST(Occupancy, TailWaveReducesAchieved) {
  const MachineModel m = a100();
  const Calibration cal;
  // 120 groups with capacity 216/wave: a single partially-filled wave.
  const auto occ = compute_occupancy(m, cal, cfg(120 * 768, 768, 0, 40));
  EXPECT_EQ(occ.waves, 1);
  EXPECT_LT(occ.achieved, 0.45);  // 120/216 fill of a 75% ceiling
}

TEST(Occupancy, RejectsIndivisibleGlobal) {
  const MachineModel m = a100();
  const Calibration cal;
  EXPECT_THROW(compute_occupancy(m, cal, cfg(1000, 768, 0, 40)), std::invalid_argument);
}

TEST(Occupancy, RejectsOversizedGroupOrShared) {
  const MachineModel m = a100();
  const Calibration cal;
  EXPECT_THROW(compute_occupancy(m, cal, cfg(4096, 2048, 0, 40)), std::invalid_argument);
  EXPECT_THROW(compute_occupancy(m, cal, cfg(768, 768, 200 * 1024, 40)),
               std::invalid_argument);
}

// ------------------------------------------------------------------ timing --

TEST(Timing, LatencyHidingCurve) {
  EXPECT_DOUBLE_EQ(latency_hiding(1.0, 0.2), 1.0);
  EXPECT_EQ(latency_hiding(0.0, 0.2), 0.0);
  EXPECT_LT(latency_hiding(0.3, 0.2), latency_hiding(0.6, 0.2));
  EXPECT_GT(latency_hiding(0.5, 0.1), latency_hiding(0.5, 0.4));
}

TEST(Timing, DramBoundKernel) {
  const MachineModel m = a100();
  const Calibration cal;
  OccupancyInfo occ;
  occ.achieved = 0.75;
  occ.theoretical = 0.75;
  occ.warps_per_sm = 48;
  TraceCounters ctr;
  // 1 GB of perfectly streaming DRAM traffic and negligible everything else.
  ctr.dram_sectors = (1u << 30) / 32;
  const double cost_units = static_cast<double>(ctr.dram_sectors);
  const auto t = compute_timing(m, cal, occ, ctr, cost_units, 1.0);
  EXPECT_STREQ(t.bound_by, "dram");
  // 1 GB at ~1.4 TB/s effective: in the 700-900 us range.
  EXPECT_GT(t.total_s, 500e-6);
  EXPECT_LT(t.total_s, 1200e-6);
}

TEST(Timing, LowOccupancySlowsDram) {
  const MachineModel m = a100();
  const Calibration cal;
  TraceCounters ctr;
  ctr.dram_sectors = 1 << 20;
  OccupancyInfo high;
  high.achieved = 0.75;
  high.warps_per_sm = 48;
  OccupancyInfo low = high;
  low.achieved = 0.25;
  const double cost = static_cast<double>(ctr.dram_sectors);
  const auto th = compute_timing(m, cal, high, ctr, cost, 1.0);
  const auto tl = compute_timing(m, cal, low, ctr, cost, 1.0);
  EXPECT_GT(tl.total_s, th.total_s * 1.2);
}

TEST(Timing, CodegenSlowdownScalesTotal) {
  const MachineModel m = a100();
  const Calibration cal;
  TraceCounters ctr;
  ctr.dram_sectors = 1 << 20;
  OccupancyInfo occ;
  occ.achieved = 0.75;
  occ.warps_per_sm = 48;
  const double cost = static_cast<double>(ctr.dram_sectors);
  const auto base = compute_timing(m, cal, occ, ctr, cost, 1.0);
  const auto slow = compute_timing(m, cal, occ, ctr, cost, 1.115);
  EXPECT_NEAR(slow.total_s / base.total_s, 1.115, 1e-9);
}

TEST(Timing, AtomicsAreAdditive) {
  const MachineModel m = a100();
  const Calibration cal;
  TraceCounters ctr;
  ctr.dram_sectors = 1 << 20;
  OccupancyInfo occ;
  occ.achieved = 0.75;
  occ.warps_per_sm = 48;
  const double cost = static_cast<double>(ctr.dram_sectors);
  const auto base = compute_timing(m, cal, occ, ctr, cost, 1.0);
  ctr.atomic_lane_updates = 10'000'000;
  const auto with_atomics = compute_timing(m, cal, occ, ctr, cost, 1.0);
  EXPECT_GT(with_atomics.total_s, base.total_s);
  EXPECT_GT(with_atomics.atomic_s, 0.0);
}

TEST(Timing, MakeStatsDerivedQuantities) {
  const MachineModel m = a100();
  const Calibration cal;
  LaunchConfig c = cfg(6291456, 768, 12288, 40);
  const auto occ = compute_occupancy(m, cal, c);
  TraceCounters ctr;
  ctr.flops = 600'800'000;
  ctr.dram_sectors = 40'000'000;
  ctr.l1_sector_hits = 60'000'000;
  ctr.l1_sector_misses = 26'000'000;
  ctr.l1_tag_requests_global = 86'000'000;
  ctr.l2_sector_requests = 26'000'000;
  ctr.l2_sector_misses = 13'000'000;
  ctr.l2_sector_hits = 13'000'000;
  const auto st = make_stats(m, cal, "3LP-1", c, occ, ctr,
                             static_cast<double>(ctr.dram_sectors) * 1.1, 1.0);
  EXPECT_GT(st.duration_us, 0.0);
  EXPECT_NEAR(st.gflops, 600.8 / (st.duration_us * 1e-6) / 1e3, 1.0);
  EXPECT_NEAR(st.l1_miss_pct, 100.0 * 26.0 / 86.0, 0.1);
  EXPECT_NEAR(st.l2_miss_pct, 50.0, 0.1);
  EXPECT_NEAR(st.shared_kb_per_group, 12.3, 0.05);  // the paper's 12.3 KB
  EXPECT_EQ(st.name, "3LP-1");
}

// ---------------------------------------------------------------- roofline --

TEST(Roofline, ClassifiesRegimes) {
  const MachineModel m = a100();
  KernelStats st;
  st.duration_us = 1000.0;
  st.counters.flops = 600'800'000;
  st.counters.dram_sectors = 40'000'000;  // 1.28 GB -> intensity ~0.47
  const auto p = roofline_analyze(m, st);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_NEAR(p.intensity, 600.8e6 / (40e6 * 32.0), 1e-6);
  EXPECT_NEAR(p.attainable_gflops, p.intensity * m.dram_peak_gbs, 1e-6);
  EXPECT_GT(p.roof_fraction, 0.0);
  EXPECT_LT(p.roof_fraction, 1.2);

  // A compute-heavy kernel: tiny traffic, many FLOPs.
  st.counters.dram_sectors = 1000;
  const auto c = roofline_analyze(m, st);
  EXPECT_FALSE(c.memory_bound);
  EXPECT_NEAR(c.attainable_gflops, m.empirical_peak_tflops * 1e3, 1e-6);
}

TEST(Roofline, DegenerateInputsAreSafe) {
  const MachineModel m = a100();
  KernelStats st;  // zeros
  const auto p = roofline_analyze(m, st);
  EXPECT_EQ(p.attainable_gflops, 0.0);
}

}  // namespace
}  // namespace gpusim
