// Simulated-timeline events: profiling info, dependency ordering, and the
// in-order/out-of-order launch-overhead difference at event granularity.
#include <gtest/gtest.h>

#include <array>

#include "minisycl/queue.hpp"

namespace minisycl {
namespace {

struct TinyKernel {
  static constexpr int kPhases = 1;
  double* out;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const double v = lane.load(&out[lane.global_id()]);
    lane.flops(2);
    lane.store(&out[lane.global_id()], v + 1.0);
  }
};

LaunchSpec tiny_spec() { return LaunchSpec{1024, 128, 0, 1, {}}; }

TEST(QueueEvents, ProfilingFieldsAreOrdered) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event ev = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(ev.start_us, ev.submit_us);
  EXPECT_GT(ev.end_us, ev.start_us);
  EXPECT_NEAR(ev.queue_latency_us(), q.launch_overhead_us(), 1e-9);
  EXPECT_GT(ev.duration_us(), 0.0);
}

TEST(QueueEvents, InOrderSerialisesSubmissions) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(b.start_us, a.end_us);
}

TEST(QueueEvents, DependenciesPushTheStart) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::out_of_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const std::array<event, 1> deps = {a};
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()}, deps);
  EXPECT_GE(b.start_us, a.end_us + q.launch_overhead_us() - 1e-9);
}

TEST(QueueEvents, OutOfOrderPaysMoreLatencyPerSubmission) {
  std::vector<double> buf(1024, 0.0);
  queue in_q(ExecMode::profiled, QueueOrder::in_order);
  queue out_q(ExecMode::profiled, QueueOrder::out_of_order);
  const event a = in_q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const event b = out_q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_LT(a.queue_latency_us(), b.queue_latency_us());
  // Kernel duration itself is identical.
  EXPECT_NEAR(a.duration_us(), b.duration_us(), 1e-9);
}

TEST(QueueEvents, HostAdvanceDelaysSubmission) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  q.host_advance_us(10'000.0);
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(b.submit_us, a.submit_us + 10'000.0 - 1e-9);
  // Device was idle by then: latency is just the launch overhead.
  EXPECT_NEAR(b.queue_latency_us(), q.launch_overhead_us(), 1e-9);
}

// ----------------------------------------------------------------------
// asynchronous error surface (SYCL 2020 §4.13): wait_and_throw(), handlers
// ----------------------------------------------------------------------

/// Install a plan that rejects the first `n` launches of any kernel.
faultsim::FaultPlan reject_first(std::uint64_t n) {
  faultsim::FaultPlan plan;
  plan.schedule.push_back(
      faultsim::ScheduledFault{faultsim::FaultKind::launch_fail, 0, n, {}});
  return plan;
}

TEST(QueueAsyncErrors, WaitAndThrowIsANoopWithoutErrors) {
  for (const QueueOrder order : {QueueOrder::in_order, QueueOrder::out_of_order}) {
    std::vector<double> buf(1024, 0.0);
    queue q(ExecMode::profiled, order);
    (void)q.submit(tiny_spec(), TinyKernel{buf.data()});
    EXPECT_NO_THROW(q.wait_and_throw());
  }
}

TEST(QueueAsyncErrors, RethrowsWithoutHandlerOnBothQueueOrders) {
  for (const QueueOrder order : {QueueOrder::in_order, QueueOrder::out_of_order}) {
    faultsim::ScopedFaultInjection fi(reject_first(1));
    std::vector<double> buf(1024, 0.0);
    queue q(ExecMode::profiled, order);
    (void)q.submit(tiny_spec(), TinyKernel{buf.data()}, "k");
    EXPECT_EQ(q.pending_async_errors(), 1u);
    EXPECT_THROW(q.wait_and_throw(), exception);
    // The list was drained: a second call is clean.
    EXPECT_EQ(q.pending_async_errors(), 0u);
    EXPECT_NO_THROW(q.wait_and_throw());
  }
}

TEST(QueueAsyncErrors, HandlerSeesSubmissionOrderOnBothQueueOrders) {
  for (const QueueOrder order : {QueueOrder::in_order, QueueOrder::out_of_order}) {
    faultsim::ScopedFaultInjection fi(reject_first(2));
    std::vector<double> buf(1024, 0.0);
    std::vector<std::string> seen;
    queue q(ExecMode::profiled, order, gpusim::a100(), gpusim::default_calibration(),
            [&seen](exception_list errors) {
              for (const std::exception_ptr& ep : errors) {
                try {
                  std::rethrow_exception(ep);
                } catch (const exception& e) {
                  seen.emplace_back(e.what());
                }
              }
            });
    ASSERT_TRUE(q.has_async_handler());
    (void)q.submit(tiny_spec(), TinyKernel{buf.data()}, "alpha");
    (void)q.submit(tiny_spec(), TinyKernel{buf.data()}, "beta");
    EXPECT_NO_THROW(q.wait_and_throw());
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_NE(seen[0].find("alpha"), std::string::npos);
    EXPECT_NE(seen[1].find("beta"), std::string::npos);
  }
}

TEST(QueueAsyncErrors, HandlerCanBeInstalledAfterConstruction) {
  faultsim::ScopedFaultInjection fi(reject_first(1));
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  EXPECT_FALSE(q.has_async_handler());
  (void)q.submit(tiny_spec(), TinyKernel{buf.data()});
  std::size_t delivered = 0;
  q.set_async_handler([&delivered](exception_list errors) { delivered = errors.size(); });
  EXPECT_NO_THROW(q.wait_and_throw());
  EXPECT_EQ(delivered, 1u);
}

TEST(QueueEvents, HundredIterationLoopMatchesPaperMethodology) {
  // The paper times 100 kernel iterations back-to-back; the event timeline
  // must equal 100 * (kernel + launch overhead).
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  event last;
  double kernel_us = 0.0;
  for (int it = 0; it < 100; ++it) {
    last = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
    kernel_us = last.duration_us();
  }
  EXPECT_NEAR(last.end_us, 100.0 * (kernel_us + q.launch_overhead_us()), 1e-6);
  EXPECT_DOUBLE_EQ(buf[7], 100.0);  // and the work really happened
}

}  // namespace
}  // namespace minisycl
