// Simulated-timeline events: profiling info, dependency ordering, and the
// in-order/out-of-order launch-overhead difference at event granularity.
#include <gtest/gtest.h>

#include <array>

#include "minisycl/queue.hpp"

namespace minisycl {
namespace {

struct TinyKernel {
  static constexpr int kPhases = 1;
  double* out;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const double v = lane.load(&out[lane.global_id()]);
    lane.flops(2);
    lane.store(&out[lane.global_id()], v + 1.0);
  }
};

LaunchSpec tiny_spec() { return LaunchSpec{1024, 128, 0, 1, {}}; }

TEST(QueueEvents, ProfilingFieldsAreOrdered) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event ev = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(ev.start_us, ev.submit_us);
  EXPECT_GT(ev.end_us, ev.start_us);
  EXPECT_NEAR(ev.queue_latency_us(), q.launch_overhead_us(), 1e-9);
  EXPECT_GT(ev.duration_us(), 0.0);
}

TEST(QueueEvents, InOrderSerialisesSubmissions) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(b.start_us, a.end_us);
}

TEST(QueueEvents, DependenciesPushTheStart) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::out_of_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const std::array<event, 1> deps = {a};
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()}, deps);
  EXPECT_GE(b.start_us, a.end_us + q.launch_overhead_us() - 1e-9);
}

TEST(QueueEvents, OutOfOrderPaysMoreLatencyPerSubmission) {
  std::vector<double> buf(1024, 0.0);
  queue in_q(ExecMode::profiled, QueueOrder::in_order);
  queue out_q(ExecMode::profiled, QueueOrder::out_of_order);
  const event a = in_q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  const event b = out_q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_LT(a.queue_latency_us(), b.queue_latency_us());
  // Kernel duration itself is identical.
  EXPECT_NEAR(a.duration_us(), b.duration_us(), 1e-9);
}

TEST(QueueEvents, HostAdvanceDelaysSubmission) {
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const event a = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  q.host_advance_us(10'000.0);
  const event b = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
  EXPECT_GE(b.submit_us, a.submit_us + 10'000.0 - 1e-9);
  // Device was idle by then: latency is just the launch overhead.
  EXPECT_NEAR(b.queue_latency_us(), q.launch_overhead_us(), 1e-9);
}

TEST(QueueEvents, HundredIterationLoopMatchesPaperMethodology) {
  // The paper times 100 kernel iterations back-to-back; the event timeline
  // must equal 100 * (kernel + launch overhead).
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  event last;
  double kernel_us = 0.0;
  for (int it = 0; it < 100; ++it) {
    last = q.submit_with_event(tiny_spec(), TinyKernel{buf.data()});
    kernel_us = last.duration_us();
  }
  EXPECT_NEAR(last.end_us, 100.0 * (kernel_us + q.launch_overhead_us()), 1e-6);
  EXPECT_DOUBLE_EQ(buf[7], 100.0);  // and the work really happened
}

}  // namespace
}  // namespace minisycl
