// Field I/O: round-trips, validation and failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/dslash_ref.hpp"
#include "lattice/io.hpp"

namespace milc {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Fnv1a, KnownValuesAndSensitivity) {
  EXPECT_EQ(io::fnv1a("", 0), 0xcbf29ce484222325ull);
  const char a[] = "lattice";
  const char b[] = "lattica";
  EXPECT_NE(io::fnv1a(a, sizeof(a)), io::fnv1a(b, sizeof(b)));
}

TEST(IO, GaugeRoundTrip) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(123);
  const std::string path = temp_path("gauge_rt.bin");
  io::save_gauge(path, geom, cfg);
  const GaugeConfiguration back = io::load_gauge(path, geom);
  for (std::int64_t f = 0; f < geom.volume(); f += 13) {
    for (int k = 0; k < kNdim; ++k) {
      EXPECT_LT(max_abs_diff(cfg.fat(f, k), back.fat(f, k)), 0.0 + 1e-300);
      EXPECT_LT(max_abs_diff(cfg.lng(f, k), back.lng(f, k)), 0.0 + 1e-300);
    }
  }
  std::remove(path.c_str());
}

TEST(IO, ColorFieldRoundTripBothParities) {
  LatticeGeom geom(4);
  for (Parity p : {Parity::Even, Parity::Odd}) {
    ColorField f(geom, p);
    f.fill_random(p == Parity::Even ? 5u : 6u);
    const std::string path = temp_path("cf_rt.bin");
    io::save_color_field(path, geom, f);
    const ColorField back = io::load_color_field(path, geom);
    EXPECT_EQ(back.parity(), p);
    EXPECT_EQ(max_abs_diff(f, back), 0.0);
    std::remove(path.c_str());
  }
}

TEST(IO, RejectsMissingFile) {
  LatticeGeom geom(4);
  EXPECT_THROW((void)io::load_gauge(temp_path("does_not_exist.bin"), geom),
               std::runtime_error);
}

TEST(IO, RejectsWrongGeometry) {
  LatticeGeom g4(4), g6(6);
  GaugeConfiguration cfg(g4);
  cfg.fill_random(7);
  const std::string path = temp_path("gauge_geom.bin");
  io::save_gauge(path, g4, cfg);
  EXPECT_THROW((void)io::load_gauge(path, g6), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IO, RejectsWrongKind) {
  LatticeGeom geom(4);
  ColorField f(geom, Parity::Even);
  f.fill_random(8);
  const std::string path = temp_path("kind.bin");
  io::save_color_field(path, geom, f);
  EXPECT_THROW((void)io::load_gauge(path, geom), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IO, DetectsBitrot) {
  LatticeGeom geom(4);
  ColorField f(geom, Parity::Even);
  f.fill_random(9);
  const std::string path = temp_path("bitrot.bin");
  io::save_color_field(path, geom, f);
  // Flip one payload byte.
  {
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    fs.seekp(256, std::ios::beg);
    char c = 0;
    fs.read(&c, 1);
    fs.seekp(256, std::ios::beg);
    c = static_cast<char>(c ^ 0x40);
    fs.write(&c, 1);
  }
  EXPECT_THROW((void)io::load_color_field(path, geom), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IO, DetectsTruncation) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(10);
  const std::string path = temp_path("trunc.bin");
  io::save_gauge(path, geom, cfg);
  // Rewrite the file with the last 100 bytes missing.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(all.data(), static_cast<std::streamsize>(all.size() - 100));
  out.close();
  EXPECT_THROW((void)io::load_gauge(path, geom), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IO, SavedGaugeReproducesDslashExactly) {
  // End-to-end: a reloaded configuration must produce a bit-identical
  // Dslash result.
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(11);
  const std::string path = temp_path("e2e.bin");
  io::save_gauge(path, geom, cfg);
  const GaugeConfiguration back = io::load_gauge(path, geom);

  ColorField b(geom, Parity::Odd), c1(geom, Parity::Even), c2(geom, Parity::Even);
  b.fill_random(12);
  GaugeView v1(geom, cfg, Parity::Even), v2(geom, back, Parity::Even);
  NeighborTable nbr(geom, Parity::Even);
  dslash_reference(v1, nbr, b, c1);
  dslash_reference(v2, nbr, b, c2);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace milc
