// ResilientRunner: bounded retry, strategy fallback, ABFT recompute and the
// fault-free identity guarantee (EXPERIMENTS.md E1: with no plan installed the
// resilient path reproduces DslashRunner bit-for-bit).
#include <gtest/gtest.h>

#include <vector>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "faultsim/resilient_runner.hpp"

namespace milc {
namespace {

using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::Injector;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

RunRequest default_request() {
  return RunRequest{.strategy = Strategy::LP3_1,
                    .order = IndexOrder::kMajor,
                    .local_size = 96,
                    .variant = Variant::SYCL};
}

/// max |c - dslash_reference| over the problem's current output field.
double error_vs_reference(DslashProblem& p) {
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  return max_abs_diff(p.c(), ref);
}

TEST(ResilientRunner, FaultFreeMatchesDslashRunnerBitForBit) {
  ASSERT_EQ(Injector::current(), nullptr);
  DslashProblem p(4, 121);
  const RunRequest req = default_request();

  DslashRunner plain;
  const RunResult base = plain.run(p, req);
  std::vector<SU3Vector<dcomplex>> base_c(p.c().data(), p.c().data() + p.sites());

  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, req);

  // The report shows an untouched first attempt...
  EXPECT_TRUE(rep.succeeded);
  EXPECT_TRUE(rep.abft_checked);
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_TRUE(rep.steps.empty());
  EXPECT_DOUBLE_EQ(rep.recovery_us, 0.0);
  EXPECT_EQ(rep.final_strategy, req.strategy);

  // ...whose simulated result is the plain runner's, bit for bit (the
  // injector-off fast path must not perturb the timeline: EXPERIMENTS.md E1).
  EXPECT_EQ(rep.result.label, base.label);
  EXPECT_EQ(rep.result.stats.duration_us, base.stats.duration_us);
  EXPECT_EQ(rep.result.kernel_us, base.kernel_us);
  EXPECT_EQ(rep.result.per_iter_us, base.per_iter_us);
  EXPECT_EQ(rep.result.gflops, base.gflops);
  EXPECT_TRUE(rep.result.stats.fault.empty());

  // And the output field is byte-identical to the plain run's.
  for (std::int64_t s = 0; s < p.sites(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      EXPECT_EQ(p.c()[s].c[i].re, base_c[static_cast<std::size_t>(s)].c[i].re);
      EXPECT_EQ(p.c()[s].c[i].im, base_c[static_cast<std::size_t>(s)].c[i].im);
    }
  }
}

TEST(ResilientRunner, TransientLaunchFailureIsRetriedWithExponentialBackoff) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 2, {}});
  ScopedFaultInjection fi(plan);

  DslashProblem p(4, 121);
  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, default_request());

  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.final_strategy, Strategy::LP3_1);
  EXPECT_EQ(rep.attempts, 3);
  ASSERT_EQ(rep.count(RecoveryAction::retry), 2);
  ASSERT_EQ(rep.steps.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.steps[0].backoff_us, 100.0);  // base * 2^0
  EXPECT_DOUBLE_EQ(rep.steps[1].backoff_us, 200.0);  // base * 2^1
  EXPECT_GT(rep.recovery_us, 300.0 - 1e-9);

  // Every injected fault is attributed to the step it provoked.
  EXPECT_EQ(rep.faults_observed(), fi.injector().injected_total());
  for (const RecoveryStep& s : rep.steps) {
    ASSERT_EQ(s.faults.size(), 1u);
    EXPECT_EQ(s.faults[0].kind, FaultKind::launch_fail);
  }
  EXPECT_LT(error_vs_reference(p), 1e-9);
}

TEST(ResilientRunner, PersistentStrategyFaultFallsDownTheLadder) {
  FaultPlan plan;
  // 3LP-1 is broken for good; the other rungs are untouched.
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 1000, "3LP-1"});
  ScopedFaultInjection fi(plan);

  DslashProblem p(4, 121);
  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, default_request());

  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.final_strategy, Strategy::LP2);
  EXPECT_EQ(rep.attempts, resilient.config().max_attempts_per_strategy + 1);
  EXPECT_EQ(rep.count(RecoveryAction::fallback), 1);
  const RecoveryStep& fb = rep.steps.back();
  EXPECT_EQ(fb.action, RecoveryAction::fallback);
  EXPECT_NE(fb.detail.find("2LP"), std::string::npos) << fb.detail;
  EXPECT_LT(error_vs_reference(p), 1e-9);
}

TEST(ResilientRunner, SilentBitFlipTriggersAbftRecompute) {
  // The flipped bit is chosen deterministically from the plan seed; low-order
  // mantissa bits perturb the contraction below the ABFT tolerance (and below
  // every field tolerance — see docs/RESILIENCE.md), so sweep a few seeds and
  // require that (a) detected flips are recomputed and (b) the final output
  // is always accepted against the serial reference.
  bool detected_at_least_once = false;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.schedule.push_back(ScheduledFault{FaultKind::bit_flip, 0, 1, {}});
    ScopedFaultInjection fi(plan);

    DslashProblem p(4, 121);
    ResilientRunner resilient;
    const RecoveryReport rep = resilient.run(p, default_request());

    ASSERT_TRUE(rep.succeeded) << "seed " << seed;
    EXPECT_EQ(fi.injector().injected(FaultKind::bit_flip), 1u) << "seed " << seed;
    if (rep.count(RecoveryAction::recompute) > 0) {
      detected_at_least_once = true;
      ASSERT_GE(rep.attempts, 2) << "seed " << seed;
      const RecoveryStep& s = rep.steps[0];
      EXPECT_EQ(s.action, RecoveryAction::recompute);
      EXPECT_DOUBLE_EQ(s.backoff_us, 0.0) << "recompute retries immediately";
      ASSERT_EQ(s.faults.size(), 1u);
      EXPECT_EQ(s.faults[0].kind, FaultKind::bit_flip);
    }
    EXPECT_LT(error_vs_reference(p), 1e-7) << "seed " << seed;
  }
  EXPECT_TRUE(detected_at_least_once)
      << "no seed in [0,16) produced a detectable flip — tolerance regressed?";
}

TEST(ResilientRunner, AllocationPressureDegradesAbftToHostCopy) {
  FaultPlan plan;
  plan.p_alloc_fail = 1.0;  // the device allocator never recovers
  plan.alloc_fail_mode = faultsim::AllocFailMode::return_null;
  ScopedFaultInjection fi(plan);

  DslashProblem p(4, 121);
  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, default_request());

  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.count(RecoveryAction::alloc_retry),
            resilient.config().max_attempts_per_strategy);
  EXPECT_EQ(rep.count(RecoveryAction::degrade), 1);
  EXPECT_TRUE(rep.abft_checked) << "verification must survive the OOM";
  EXPECT_LT(error_vs_reference(p), 1e-9);
}

TEST(ResilientRunner, SurvivesAMixedFaultStorm) {
  FaultPlan plan;
  plan.watchdog_timeout_us = 2000.0;
  plan.schedule.push_back(ScheduledFault{FaultKind::sticky_fault, 0, 1, {}});
  plan.schedule.push_back(ScheduledFault{FaultKind::hang, 1, 1, {}});
  ScopedFaultInjection fi(plan);

  DslashProblem p(4, 121);
  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, default_request());

  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.attempts, 3);
  EXPECT_EQ(rep.count(RecoveryAction::retry), 2);
  ASSERT_EQ(rep.steps.size(), 2u);
  EXPECT_EQ(rep.steps[0].faults[0].kind, FaultKind::sticky_fault);
  EXPECT_EQ(rep.steps[1].faults[0].kind, FaultKind::hang);
  // The hung attempt charges the watchdog to the recovery clock.
  EXPECT_GT(rep.recovery_us, plan.watchdog_timeout_us);
  EXPECT_LT(error_vs_reference(p), 1e-9);
  EXPECT_NE(rep.summary().find("SUCCEEDED"), std::string::npos);
}

TEST(ResilientRunner, ExhaustedLadderReportsAbort) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 1000000, {}});
  ScopedFaultInjection fi(plan);

  DslashProblem p(4, 121);
  ResilientRunner resilient;
  const RecoveryReport rep = resilient.run(p, default_request());

  EXPECT_FALSE(rep.succeeded);
  const int per = resilient.config().max_attempts_per_strategy;
  EXPECT_EQ(rep.attempts, 3 * per);  // requested + 2 remaining ladder rungs
  EXPECT_EQ(rep.count(RecoveryAction::fallback), 2);
  EXPECT_EQ(rep.count(RecoveryAction::abort), 1);
  EXPECT_EQ(rep.steps.back().action, RecoveryAction::abort);
  EXPECT_NE(rep.summary().find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace milc
