// faultsim: deterministic fault injection through the minisycl fault sites —
// allocation refusal, launch rejection, sticky faults, watchdog hangs and
// ECC-like bit flips — and the SYCL 2020 asynchronous-error surface.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"

namespace minisycl {
namespace {

using faultsim::AllocFailMode;
using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::Injector;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

struct TinyKernel {
  static constexpr int kPhases = 1;
  double* out;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const double v = lane.load(&out[lane.global_id()]);
    lane.flops(2);
    lane.store(&out[lane.global_id()], v + 1.0);
  }
};

LaunchSpec tiny_spec() { return LaunchSpec{1024, 128, 0, 1, {}}; }

/// Run one submission and return its stats.
gpusim::KernelStats submit_once(queue& q, std::vector<double>& buf,
                                const std::string& name) {
  return q.submit(tiny_spec(), TinyKernel{buf.data()}, name);
}

TEST(FaultSim, OffByDefault) {
  ASSERT_EQ(Injector::current(), nullptr);
  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional);
  const auto stats = submit_once(q, buf, "plain");
  EXPECT_TRUE(stats.fault.empty());
  EXPECT_EQ(q.pending_async_errors(), 0u);
  EXPECT_DOUBLE_EQ(buf[0], 1.0);
}

TEST(FaultSim, ScopedInstallUninstalls) {
  {
    ScopedFaultInjection fi(FaultPlan{});
    EXPECT_NE(Injector::current(), nullptr);
  }
  EXPECT_EQ(Injector::current(), nullptr);
}

TEST(FaultSim, DrawsAreDeterministicAcrossRuns) {
  auto run = [] {
    FaultPlan plan;
    plan.seed = 42;
    plan.p_launch_fail = 0.3;
    plan.p_sticky = 0.2;
    ScopedFaultInjection fi(plan);
    std::vector<double> buf(1024, 0.0);
    queue q(ExecMode::functional);
    for (int i = 0; i < 50; ++i) (void)submit_once(q, buf, "det");
    return fi.injector().log();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty()) << "plan with p=0.3 over 50 launches must fire";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].occurrence, b[i].occurrence);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
}

TEST(FaultSim, AllocFailReturnsNullThenRecovers) {
  FaultPlan plan;
  plan.alloc_fail_mode = AllocFailMode::return_null;
  plan.schedule.push_back(ScheduledFault{FaultKind::alloc_fail, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  queue q(ExecMode::functional);
  double* p = malloc_device<double>(16, q);
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(fi.injector().injected(FaultKind::alloc_fail), 1u);

  // The schedule covered occurrence 0 only: the retry succeeds.
  double* p2 = malloc_device<double>(16, q);
  ASSERT_NE(p2, nullptr);
  minisycl::free(p2, q);
}

TEST(FaultSim, AllocFailCanThrowBadAlloc) {
  FaultPlan plan;
  plan.alloc_fail_mode = AllocFailMode::throw_bad_alloc;
  plan.schedule.push_back(ScheduledFault{FaultKind::alloc_fail, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  queue q(ExecMode::functional);
  EXPECT_THROW((void)malloc_device<double>(16, q), std::bad_alloc);
}

TEST(FaultSim, InjectedLaunchFailureSuppressesTheKernel) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional);
  const auto stats = submit_once(q, buf, "victim");
  EXPECT_EQ(stats.fault, "launch-fail");
  EXPECT_DOUBLE_EQ(buf[0], 0.0) << "a failed launch must have no side effects";
  EXPECT_EQ(q.pending_async_errors(), 1u);

  try {
    q.wait_and_throw();
    FAIL() << "wait_and_throw must rethrow without a handler";
  } catch (const exception& e) {
    EXPECT_EQ(e.code(), errc::kernel_launch);
    EXPECT_NE(std::string(e.what()).find("victim"), std::string::npos) << e.what();
  }
  EXPECT_EQ(q.pending_async_errors(), 0u);
}

TEST(FaultSim, StickyFaultClearsAfterBurst) {
  FaultPlan plan;
  plan.p_sticky = 1.0;  // every launch wants to stick...
  plan.sticky_burst = 2;  // ...but a site clears after 2 consecutive failures
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional, QueueOrder::in_order, gpusim::a100(),
          gpusim::default_calibration(), [](exception_list) {});
  const auto a = submit_once(q, buf, "sticky");
  const auto b = submit_once(q, buf, "sticky");
  const auto c = submit_once(q, buf, "sticky");
  EXPECT_EQ(a.fault, "sticky-fault");
  EXPECT_EQ(b.fault, "sticky-fault");
  EXPECT_TRUE(c.fault.empty()) << "bounded retry must get past a transient fault";
  EXPECT_DOUBLE_EQ(buf[0], 1.0);  // only the third launch ran
  q.wait_and_throw();  // handler swallows the two buffered errors
}

TEST(FaultSim, InjectedHangChargesTheWatchdog) {
  FaultPlan plan;
  plan.watchdog_timeout_us = 1000.0;
  plan.schedule.push_back(ScheduledFault{FaultKind::hang, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const auto stats = submit_once(q, buf, "hung");
  EXPECT_EQ(stats.fault, "hang");
  EXPECT_NEAR(q.sim_time_us(), 1000.0 + q.launch_overhead_us(), 1e-9)
      << "a hang must cost the watchdog timeout on the simulated timeline";
  try {
    q.wait_and_throw();
    FAIL() << "the watchdog expiry must surface asynchronously";
  } catch (const exception& e) {
    EXPECT_EQ(e.code(), errc::watchdog_timeout);
  }
}

TEST(FaultSim, SlowKernelIsKilledByTheWatchdog) {
  FaultPlan plan;
  plan.watchdog_timeout_us = 1e-9;  // below any real simulated duration
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::profiled, QueueOrder::in_order);
  const auto stats = submit_once(q, buf, "slow");
  EXPECT_EQ(stats.fault, "hang");
  EXPECT_EQ(fi.injector().injected(FaultKind::hang), 1u);
}

TEST(FaultSim, BitFlipChangesExactlyOneBitOfARegisteredRegion) {
  FaultPlan plan;
  plan.seed = 7;
  plan.schedule.push_back(ScheduledFault{FaultKind::bit_flip, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  const std::vector<double> before = buf;
  fi.injector().set_corruption_targets(
      {{reinterpret_cast<std::uint64_t>(buf.data()), buf.size() * sizeof(double)}});

  queue q(ExecMode::functional);
  const auto stats = submit_once(q, buf, "flip");
  EXPECT_TRUE(stats.fault.empty()) << "corruption is silent — no launch error";
  EXPECT_EQ(q.pending_async_errors(), 0u);
  EXPECT_EQ(fi.injector().injected(FaultKind::bit_flip), 1u);

  // The kernel added 1.0 everywhere; exactly one byte may then differ from
  // that expectation, and by exactly one bit.
  const auto* got = reinterpret_cast<const unsigned char*>(buf.data());
  std::vector<double> expect(before);
  for (double& v : expect) v += 1.0;
  const auto* want = reinterpret_cast<const unsigned char*>(expect.data());
  int diff_bytes = 0;
  int diff_bits = 0;
  for (std::size_t i = 0; i < buf.size() * sizeof(double); ++i) {
    if (got[i] != want[i]) {
      ++diff_bytes;
      unsigned x = got[i] ^ want[i];
      while (x != 0) {
        diff_bits += static_cast<int>(x & 1u);
        x >>= 1;
      }
    }
  }
  EXPECT_EQ(diff_bytes, 1);
  EXPECT_EQ(diff_bits, 1);
  fi.injector().set_corruption_targets({});
}

TEST(FaultSim, BitFlipWithoutTargetsIsInert) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::bit_flip, 0, 4, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional);
  (void)submit_once(q, buf, "no-targets");
  EXPECT_EQ(fi.injector().injected(FaultKind::bit_flip), 0u);
}

TEST(FaultSim, ScheduleSiteFilterSelectsTheKernel) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 100, "3LP"});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional, QueueOrder::in_order, gpusim::a100(),
          gpusim::default_calibration(), [](exception_list) {});
  const auto a = submit_once(q, buf, "3LP-1 k-major");
  const auto b = submit_once(q, buf, "1LP");
  EXPECT_EQ(a.fault, "launch-fail");
  EXPECT_TRUE(b.fault.empty());
  q.wait_and_throw();
}

TEST(FaultSim, AsyncHandlerReceivesTheWholeBatchInSubmissionOrder) {
  for (const QueueOrder order : {QueueOrder::in_order, QueueOrder::out_of_order}) {
    FaultPlan plan;
    plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 1, "first"});
    plan.schedule.push_back(ScheduledFault{FaultKind::hang, 0, 1, "second"});
    ScopedFaultInjection fi(plan);

    std::vector<double> buf(1024, 0.0);
    std::vector<std::string> seen;
    queue q(ExecMode::functional, order, gpusim::a100(), gpusim::default_calibration(),
            [&seen](exception_list errors) {
              for (const std::exception_ptr& ep : errors) {
                try {
                  std::rethrow_exception(ep);
                } catch (const exception& e) {
                  seen.emplace_back(e.what());
                }
              }
            });
    (void)submit_once(q, buf, "first");
    (void)submit_once(q, buf, "second");
    ASSERT_EQ(q.pending_async_errors(), 2u);
    EXPECT_NO_THROW(q.wait_and_throw()) << "a handler absorbs the batch";
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_NE(seen[0].find("first"), std::string::npos);
    EXPECT_NE(seen[1].find("second"), std::string::npos);
    EXPECT_EQ(q.pending_async_errors(), 0u);
  }
}

TEST(FaultSim, LogSinceReturnsOnlyNewEvents) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 2, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional, QueueOrder::in_order, gpusim::a100(),
          gpusim::default_calibration(), [](exception_list) {});
  (void)submit_once(q, buf, "k");
  const std::size_t mark = fi.injector().log().size();
  (void)submit_once(q, buf, "k");
  const auto since = fi.injector().log_since(mark);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].occurrence, 1u);
  EXPECT_EQ(fi.injector().injected_total(), 2u);
  q.wait_and_throw();
}

TEST(FaultSim, ScheduledStickyHonoursItsRepeatCount) {
  // A *scheduled* sticky fault fires for exactly `repeat` occurrences — the
  // probabilistic sticky_burst clearing must not cut it short, or retry
  // ladders can never be driven past their first rung deterministically.
  FaultPlan plan;
  plan.sticky_burst = 2;  // would clear a probabilistic sticky after 2
  plan.schedule.push_back(ScheduledFault{FaultKind::sticky_fault, 0, 5, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional, QueueOrder::in_order, gpusim::a100(),
          gpusim::default_calibration(), [](exception_list) {});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(submit_once(q, buf, "scheduled-sticky").fault, "sticky-fault") << i;
  }
  EXPECT_TRUE(submit_once(q, buf, "scheduled-sticky").fault.empty());
  EXPECT_EQ(fi.injector().injected(FaultKind::sticky_fault), 5u);
  q.wait_and_throw();
}

TEST(FaultSim, MessageVerdictsAreDeterministicAcrossRuns) {
  auto run = [] {
    FaultPlan plan;
    plan.seed = 404;
    plan.p_msg_drop = 0.25;
    plan.p_msg_corrupt = 0.25;
    plan.p_msg_delay = 0.25;
    ScopedFaultInjection fi(plan);
    std::vector<faultsim::LinkVerdict> verdicts;
    for (int i = 0; i < 64; ++i) {
      verdicts.push_back(fi.injector().on_message("halo-exchange r0->r1", 4096));
    }
    return verdicts;
  };
  const auto a = run();
  const auto b = run();
  bool any = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].corrupted, b[i].corrupted);
    EXPECT_EQ(a[i].delayed, b[i].delayed);
    EXPECT_EQ(a[i].corrupt_key, b[i].corrupt_key);
    any = any || a[i].dropped || a[i].corrupted || a[i].delayed;
  }
  EXPECT_TRUE(any) << "the storm must actually fire over 64 messages";
}

TEST(FaultSim, DroppedMessageIsNeitherCorruptedNorDelayed) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::msg_drop, 0, 1, {}});
  plan.schedule.push_back(ScheduledFault{FaultKind::msg_corrupt, 0, 1, {}});
  plan.schedule.push_back(ScheduledFault{FaultKind::msg_delay, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  const auto v = fi.injector().on_message("halo-exchange r0->r1", 1024);
  EXPECT_TRUE(v.dropped) << "a lost message never arrives";
  EXPECT_FALSE(v.corrupted);
  EXPECT_FALSE(v.delayed);
  EXPECT_EQ(fi.injector().injected(FaultKind::msg_drop), 1u);
  EXPECT_EQ(fi.injector().injected(FaultKind::msg_corrupt), 0u);
}

TEST(FaultSim, MessageSiteFilterSelectsOneLink) {
  // The schedule grammar addresses multidev wire names directly: a filter of
  // "r0->r1" picks out one direction of one link and leaves the rest alone.
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::msg_corrupt, 0, 100, "r0->r1"});
  ScopedFaultInjection fi(plan);

  const auto hit = fi.injector().on_message("halo-exchange r0->r1", 512);
  const auto reverse = fi.injector().on_message("halo-exchange r1->r0", 512);
  const auto other = fi.injector().on_message("halo-exchange r2->r3", 512);
  EXPECT_TRUE(hit.corrupted);
  EXPECT_NE(hit.corrupt_key, 0u);
  EXPECT_FALSE(reverse.corrupted);
  EXPECT_FALSE(other.corrupted);
}

TEST(FaultSim, DelayedMessageCarriesThePlannedPenalty) {
  FaultPlan plan;
  plan.delay_latency_us = 17.0;
  plan.delay_bw_factor = 3.0;
  plan.schedule.push_back(ScheduledFault{FaultKind::msg_delay, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  const auto v = fi.injector().on_message("halo-exchange r0->r1", 2048);
  EXPECT_TRUE(v.delayed);
  EXPECT_FALSE(v.dropped);
  EXPECT_DOUBLE_EQ(v.extra_latency_us, 17.0);
  EXPECT_DOUBLE_EQ(v.bw_factor, 3.0);
}

TEST(FaultSim, FlipBitIsDeterministicAndFlipsExactlyOneBit) {
  std::vector<unsigned char> a(256, 0xA5);
  std::vector<unsigned char> b(256, 0xA5);
  faultsim::flip_bit(a.data(), a.size(), /*key=*/0xfeedULL);
  faultsim::flip_bit(b.data(), b.size(), /*key=*/0xfeedULL);
  EXPECT_EQ(a, b) << "the same key must flip the same bit";

  int diff_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned x = a[i] ^ 0xA5u;
    while (x != 0) {
      diff_bits += static_cast<int>(x & 1u);
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1);

  // Flipping again with the same key restores the original payload — the
  // property the checksum-retry path relies on for idempotent re-delivery.
  faultsim::flip_bit(a.data(), a.size(), /*key=*/0xfeedULL);
  EXPECT_EQ(a, std::vector<unsigned char>(256, 0xA5));
}

TEST(FaultSim, DeviceLossFiresOnItsScheduledOccurrence) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 2, 1, "device r1"});
  ScopedFaultInjection fi(plan);

  // Occurrences 0 and 1 pass; occurrence 2 is the loss.  A different site
  // keeps its own occurrence counter and never fires.
  EXPECT_FALSE(fi.injector().on_device_check("device r1 @ 1x1x1x2"));
  EXPECT_FALSE(fi.injector().on_device_check("device r1 @ 1x1x1x2"));
  EXPECT_TRUE(fi.injector().on_device_check("device r1 @ 1x1x1x2"));
  EXPECT_FALSE(fi.injector().on_device_check("device r0 @ 1x1x1x2"));
  EXPECT_EQ(fi.injector().injected(FaultKind::device_loss), 1u);
}

TEST(FaultSim, HealFiresOnItsScheduledOccurrence) {
  // heal is the inverse of device_loss: a scheduled entry brings a named
  // resource back on exactly the index-th consult of its `heal/*` site.
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::heal, 1, 1, "heal/device r1"});
  ScopedFaultInjection fi(plan);

  EXPECT_FALSE(fi.injector().on_heal_check("heal/device r1 @ 1x1x1x2"));
  EXPECT_TRUE(fi.injector().on_heal_check("heal/device r1 @ 1x1x1x2"));
  EXPECT_FALSE(fi.injector().on_heal_check("heal/device r1 @ 1x1x1x2"))
      << "repeat=1 covers exactly one occurrence";
  EXPECT_EQ(fi.injector().injected(FaultKind::heal), 1u);
}

TEST(FaultSim, HealSiteGrammarDistinguishesDevicesAndNodes) {
  // The `heal/*` grammar addresses one resource per site: a device filter
  // must not return a node (or a different device), and each site keeps its
  // own occurrence counter.
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::heal, 0, 1, "heal/device d3"});
  plan.schedule.push_back(ScheduledFault{FaultKind::heal, 0, 1, "heal/node n1"});
  ScopedFaultInjection fi(plan);

  EXPECT_FALSE(fi.injector().on_heal_check("heal/device d0"));
  EXPECT_FALSE(fi.injector().on_heal_check("heal/node n0"));
  EXPECT_TRUE(fi.injector().on_heal_check("heal/device d3"));
  EXPECT_TRUE(fi.injector().on_heal_check("heal/node n1"));
  EXPECT_EQ(fi.injector().injected(FaultKind::heal), 2u);
}

TEST(FaultSim, HealDrawsAreDeterministicAcrossRuns) {
  auto run = [] {
    FaultPlan plan;
    plan.seed = 99;
    plan.p_heal = 0.3;
    ScopedFaultInjection fi(plan);
    for (int i = 0; i < 50; ++i) {
      (void)fi.injector().on_heal_check("heal/device r0 @ 1x1x1x2");
    }
    return fi.injector().log();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty()) << "p_heal=0.3 over 50 consults must fire";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].occurrence, b[i].occurrence);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
}

TEST(FaultSim, HealConsultsDoNotPerturbLossDraws) {
  // heal has its own draw stream (heal_counter_): a replay that adds heal
  // consults — e.g. a rejoin probe loop — must see the *same* device-loss
  // verdicts as a replay without them, or kill-then-heal scenarios would not
  // reproduce from their seed.
  auto losses = [](bool interleave_heals) {
    FaultPlan plan;
    plan.seed = 2024;
    plan.p_device_loss = 0.2;
    plan.p_heal = 0.5;
    ScopedFaultInjection fi(plan);
    std::vector<bool> verdicts;
    for (int i = 0; i < 40; ++i) {
      if (interleave_heals) (void)fi.injector().on_heal_check("heal/device r1");
      verdicts.push_back(fi.injector().on_device_check("device r1 @ 1x1x1x2"));
    }
    return verdicts;
  };
  const auto without = losses(false);
  const auto with = losses(true);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i], with[i]) << "loss draw " << i << " shifted by heal consults";
  }
}

TEST(FaultSim, WaitDoesNotProcessAsyncErrors) {
  FaultPlan plan;
  plan.schedule.push_back(ScheduledFault{FaultKind::launch_fail, 0, 1, {}});
  ScopedFaultInjection fi(plan);

  std::vector<double> buf(1024, 0.0);
  queue q(ExecMode::functional);
  (void)submit_once(q, buf, "k");
  EXPECT_NO_THROW(q.wait());  // SYCL: wait() leaves the async list untouched
  EXPECT_EQ(q.pending_async_errors(), 1u);
  EXPECT_THROW(q.wait_and_throw(), exception);
}

}  // namespace
}  // namespace minisycl
