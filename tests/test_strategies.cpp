// Strategy metadata, variant table, and structural invariants of the
// profiled strategy kernels (the qualitative signatures Table I rests on).
#include <gtest/gtest.h>

#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

TEST(StrategyMeta, ItemsPerSite) {
  EXPECT_EQ(items_per_site(Strategy::LP1), 1);
  EXPECT_EQ(items_per_site(Strategy::LP2), 3);
  EXPECT_EQ(items_per_site(Strategy::LP3_1), 12);
  EXPECT_EQ(items_per_site(Strategy::LP3_2), 12);
  EXPECT_EQ(items_per_site(Strategy::LP3_3), 12);
  EXPECT_EQ(items_per_site(Strategy::LP4_1), 48);
  EXPECT_EQ(items_per_site(Strategy::LP4_2), 48);
}

TEST(StrategyMeta, Phases) {
  EXPECT_EQ(phases_of(Strategy::LP1), 1);
  EXPECT_EQ(phases_of(Strategy::LP2), 1);
  EXPECT_EQ(phases_of(Strategy::LP3_1), 2);
  EXPECT_EQ(phases_of(Strategy::LP4_1), 3);
}

TEST(StrategyMeta, LocalSizeMultiples) {
  // §III: k-major 3LP needs multiples of 12, i-major of 4; 4LP of 48 — all
  // additionally warp multiples (§IV-B).
  EXPECT_EQ(local_size_multiple(Strategy::LP3_1, IndexOrder::kMajor), 96);  // lcm(12,32)
  EXPECT_EQ(local_size_multiple(Strategy::LP3_1, IndexOrder::iMajor), 32);  // lcm(4,32)
  EXPECT_EQ(local_size_multiple(Strategy::LP4_1, IndexOrder::kMajor), 96);  // lcm(48,32)
  EXPECT_EQ(local_size_multiple(Strategy::LP1, IndexOrder::kMajor), 32);
  EXPECT_EQ(local_size_multiple(Strategy::LP2, IndexOrder::kMajor), 96);  // lcm(3,32)
}

TEST(StrategyMeta, PaperLocalSizes) {
  // At L = 32 (paper) and L = 16 (bench default) the valid sweep is
  // {96, 192, 384, 768} for 3LP/4LP.
  for (std::int64_t sites : {32768LL, 524288LL}) {
    const auto ls = paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, sites);
    EXPECT_EQ(ls, (std::vector<int>{96, 192, 384, 768}));
    const auto l1 = paper_local_sizes(Strategy::LP1, IndexOrder::kMajor, sites);
    EXPECT_EQ(l1, (std::vector<int>{64, 128, 256, 512}));
  }
}

TEST(StrategyMeta, Validity) {
  EXPECT_TRUE(is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 32768));
  EXPECT_FALSE(is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, 100, 32768));
  EXPECT_FALSE(is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, 1056, 32768));
  // i-major accepts multiples of 32 that are not multiples of 96 …
  EXPECT_TRUE(is_valid_local_size(Strategy::LP3_1, IndexOrder::iMajor, 128, 32768));
  // … but k-major does not.
  EXPECT_FALSE(is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, 128, 32768));
  // Global divisibility.
  EXPECT_FALSE(is_valid_local_size(Strategy::LP1, IndexOrder::kMajor, 96, 32768));
}

TEST(StrategyMeta, Labels) {
  EXPECT_EQ(config_label(Strategy::LP3_1, IndexOrder::kMajor, 768), "3LP-1 k-major /768");
  EXPECT_EQ(config_label(Strategy::LP1, IndexOrder::kMajor, 256), "1LP /256");
  EXPECT_EQ(config_label(Strategy::LP4_2, IndexOrder::lMajor, 96), "4LP-2 l-major /96");
}

TEST(StrategyMeta, OrdersMatchPaperFig6) {
  EXPECT_EQ(orders_of(Strategy::LP1).size(), 1u);
  EXPECT_EQ(orders_of(Strategy::LP2).size(), 1u);
  EXPECT_EQ(orders_of(Strategy::LP3_1),
            (std::vector<IndexOrder>{IndexOrder::kMajor, IndexOrder::iMajor}));
  EXPECT_EQ(orders_of(Strategy::LP4_2),
            (std::vector<IndexOrder>{IndexOrder::lMajor, IndexOrder::iMajor}));
}

TEST(Variants, TableIsConsistentWithPaper) {
  EXPECT_EQ(variant_info(Variant::SYCL).queue_order, minisycl::QueueOrder::out_of_order);
  EXPECT_EQ(variant_info(Variant::CUDA).queue_order, minisycl::QueueOrder::in_order);
  EXPECT_EQ(variant_info(Variant::SYCLomatic).queue_order, minisycl::QueueOrder::in_order);
  // The derived-index penalty is 10.0–12.2% (paper §IV-D6).
  EXPECT_GE(variant_info(Variant::SYCLomatic).codegen_slowdown, 1.10);
  EXPECT_LE(variant_info(Variant::SYCLomatic).codegen_slowdown, 1.122);
  // maxrregcount=64 improves up to 3.6% (§IV-D4).
  const double cuda_gain = variant_info(Variant::CUDA).codegen_slowdown /
                           variant_info(Variant::CUDA_maxrreg64).codegen_slowdown;
  EXPECT_GE(cuda_gain, 1.0);
  EXPECT_LE(cuda_gain, 1.036 + 1e-12);
  // SyclCPLX within +-3% (§IV-D5).
  EXPECT_NEAR(variant_info(Variant::SyclCPLX).codegen_slowdown, 1.0, 0.03);
  // The three SYCLomatic variations have no effect (§IV-D6).
  EXPECT_EQ(variant_info(Variant::SYCLomatic1D).codegen_slowdown, 1.0);
  EXPECT_EQ(variant_info(Variant::SYCLomaticFence).codegen_slowdown, 1.0);
  EXPECT_EQ(variant_info(Variant::SYCLomaticNoChk).codegen_slowdown, 1.0);
  EXPECT_TRUE(variant_info(Variant::SyclCPLX).use_syclcplx);
  EXPECT_FALSE(variant_info(Variant::SYCL).use_syclcplx);
}

// ------------------------------------------------- structural signatures ---

struct Signature {
  gpusim::KernelStats stats;
};

Signature run_at_l8(Strategy s, IndexOrder o, int local) {
  static DslashProblem p(8, 31);
  DslashRunner runner;
  RunRequest req{.strategy = s, .order = o, .local_size = local, .variant = Variant::SYCL};
  return {runner.run(p, req).stats};
}

TEST(StrategySignatures, SharedMemoryUsage) {
  // Table I row 9: 12.3 KB/WG at local 768 for 3LP-1/2 and 4LP; zero for
  // 1LP, 2LP and 3LP-3.
  EXPECT_NEAR(run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 768).stats.shared_kb_per_group,
              12.3, 0.05);  // Table I row 9: 12.3 KB (decimal)
  EXPECT_EQ(run_at_l8(Strategy::LP1, IndexOrder::kMajor, 256).stats.shared_kb_per_group, 0.0);
  EXPECT_EQ(run_at_l8(Strategy::LP3_3, IndexOrder::kMajor, 768).stats.shared_kb_per_group,
            0.0);
}

TEST(StrategySignatures, SharedWavefrontsOnlyWhereLocalMemoryIsUsed) {
  EXPECT_GT(run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 768).stats.counters.shared_wavefronts,
            0u);
  EXPECT_EQ(run_at_l8(Strategy::LP3_3, IndexOrder::kMajor, 768).stats.counters.shared_wavefronts,
            0u);
  EXPECT_EQ(run_at_l8(Strategy::LP2, IndexOrder::kMajor, 768).stats.counters.shared_wavefronts,
            0u);
}

TEST(StrategySignatures, DivergenceOnlyIn4LP) {
  // Table I row 13: zero divergent branches for 1LP..3LP, thousands for 4LP.
  EXPECT_EQ(run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 768)
                .stats.counters.divergent_branches,
            0u);
  const auto lp41 = run_at_l8(Strategy::LP4_1, IndexOrder::kMajor, 768);
  const auto lp42 = run_at_l8(Strategy::LP4_2, IndexOrder::iMajor, 768);
  EXPECT_GT(lp41.stats.counters.divergent_branches, 0u);
  // 4LP-2 i-major interleaves l within every warp: at least as divergent.
  EXPECT_GE(lp42.stats.counters.divergent_branches,
            lp41.stats.counters.divergent_branches);
}

TEST(StrategySignatures, AtomicsOnlyIn3LP2And3LP3) {
  EXPECT_EQ(run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 768).stats.counters.atomic_lane_updates,
            0u);
  const auto lp32 = run_at_l8(Strategy::LP3_2, IndexOrder::kMajor, 768);
  const auto lp33 = run_at_l8(Strategy::LP3_3, IndexOrder::kMajor, 768);
  // 3LP-2: one complex add per work-item (2 doubles); 3LP-3: one per l-term.
  EXPECT_EQ(lp32.stats.counters.atomic_lane_updates, 2u * 12u * 2048u);
  EXPECT_EQ(lp33.stats.counters.atomic_lane_updates, 4u * 2u * 12u * 2048u);
}

TEST(StrategySignatures, OccupancyOrdering) {
  // 1LP (register-limited, 50% ceiling) must sit below 3LP-1 (75% ceiling).
  const auto lp1 = run_at_l8(Strategy::LP1, IndexOrder::kMajor, 256);
  const auto lp31 = run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 768);
  EXPECT_LT(lp1.stats.occupancy.theoretical, lp31.stats.occupancy.theoretical);
}

TEST(StrategySignatures, WorkItemCounts) {
  // Table I row 2.
  const std::int64_t sites = 2048;  // L=8
  EXPECT_EQ(run_at_l8(Strategy::LP1, IndexOrder::kMajor, 256).stats.launch.global_size, sites);
  EXPECT_EQ(run_at_l8(Strategy::LP2, IndexOrder::kMajor, 96).stats.launch.global_size,
            3 * sites);
  EXPECT_EQ(run_at_l8(Strategy::LP3_2, IndexOrder::iMajor, 96).stats.launch.global_size,
            12 * sites);
  EXPECT_EQ(run_at_l8(Strategy::LP4_1, IndexOrder::iMajor, 96).stats.launch.global_size,
            48 * sites);
}

TEST(StrategySignatures, BarrierEventsMatchPhases) {
  const auto lp31 = run_at_l8(Strategy::LP3_1, IndexOrder::kMajor, 96);
  const auto lp41 = run_at_l8(Strategy::LP4_1, IndexOrder::kMajor, 96);
  const std::uint64_t warps31 = 12u * 2048u / 32u;
  const std::uint64_t warps41 = 48u * 2048u / 32u;
  EXPECT_EQ(lp31.stats.counters.barrier_warp_events, warps31);      // 1 barrier
  EXPECT_EQ(lp41.stats.counters.barrier_warp_events, 2 * warps41);  // 2 barriers
}

}  // namespace
}  // namespace milc
