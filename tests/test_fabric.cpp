// test_fabric.cpp — the inter-node fabric tier: wire-time arithmetic, node
// topology composition, message aggregation framing, the NIC/switch
// contention schedule, and aggregate-level fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "gpusim/fabric.hpp"

// LinkMessage is an aggregate whose trailing members (site, fault flags,
// start/done times) are outputs of the exchange simulators; tests
// designated-initialise only the inputs.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace gpusim {
namespace {

TEST(FabricModel, WireTimeIsLatencyPlusHopsPlusBytesOverBandwidth) {
  const FabricModel f = hdr_fabric();
  // 24 GB/s = 24e3 bytes/us: 240 kB takes 10 us on the wire, plus the NIC
  // latency and two switch hops.
  EXPECT_DOUBLE_EQ(fabric_wire_time_us(f, 240'000),
                   f.nic_latency_us + 2.0 * f.switch_latency_us + 10.0);
  // Zero payload still pays the full latency stack.
  EXPECT_DOUBLE_EQ(fabric_wire_time_us(f, 0),
                   f.nic_latency_us + 2.0 * f.switch_latency_us);
  // The fabric is an order of magnitude slower than NVLink for the same
  // message — the asymmetry the topology-aware partitioner exists for.
  const LinkModel nv = dgx_a100_links();
  EXPECT_GT(fabric_wire_time_us(f, 1'000'000), wire_time_us(nv, 0, 1, 1'000'000));
}

TEST(NodeTopology, ClusterComposesContiguousNodeGroups) {
  const NodeTopology topo = cluster(2, 4);
  EXPECT_EQ(topo.total_devices(), 8);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(7), 1);
  EXPECT_TRUE(topo.same_node(0, 3));
  EXPECT_FALSE(topo.same_node(3, 4));
  // The island is sized to the node group so every same-node pair is NVLink.
  EXPECT_EQ(topo.intra.nvlink_devices, 4);

  EXPECT_FALSE(cluster(1, 8).multi_node());
  EXPECT_THROW((void)cluster(0, 4), std::invalid_argument);
  EXPECT_THROW((void)cluster(2, 0), std::invalid_argument);
}

TEST(Aggregation, CoalescesPerPairInFirstAppearanceOrder) {
  const NodeTopology topo = cluster(2, 2);  // devices {0,1} | {2,3}
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 2, .bytes = 100},
      {.src = 0, .dst = 1, .bytes = 50},  // intra-node: never aggregated
      {.src = 1, .dst = 3, .bytes = 200},
      {.src = 0, .dst = 2, .bytes = 300, .depart_us = 2.0},
      {.src = 2, .dst = 0, .bytes = 400},
  };
  const std::vector<AggregatedMessage> aggs = aggregate_fabric_messages(topo, msgs);
  ASSERT_EQ(aggs.size(), 3u);

  // (0,2) appeared first and carries two frames in input order with
  // contiguous payload offsets.
  EXPECT_EQ(aggs[0].src, 0);
  EXPECT_EQ(aggs[0].dst, 2);
  ASSERT_EQ(aggs[0].frames.size(), 2u);
  EXPECT_EQ(aggs[0].frames[0].msg_index, 0u);
  EXPECT_EQ(aggs[0].frames[0].offset_bytes, 0);
  EXPECT_EQ(aggs[0].frames[0].bytes, 100);
  EXPECT_EQ(aggs[0].frames[1].msg_index, 3u);
  EXPECT_EQ(aggs[0].frames[1].offset_bytes, 100);
  EXPECT_EQ(aggs[0].frames[1].bytes, 300);
  EXPECT_EQ(aggs[0].payload_bytes, 400);
  // The aggregate departs when its latest constituent is packed.
  EXPECT_DOUBLE_EQ(aggs[0].depart_us, 2.0);
  // Wire bytes add one frame header per slab.
  EXPECT_EQ(aggs[0].wire_bytes(topo.fabric),
            400 + 2 * topo.fabric.frame_header_bytes);

  EXPECT_EQ(aggs[1].src, 1);
  EXPECT_EQ(aggs[1].dst, 3);
  EXPECT_EQ(aggs[1].payload_bytes, 200);
  EXPECT_EQ(aggs[2].src, 2);
  EXPECT_EQ(aggs[2].dst, 0);
  EXPECT_EQ(aggs[2].payload_bytes, 400);
}

TEST(Aggregation, IntraNodeTrafficYieldsNoAggregates) {
  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 100},
      {.src = 3, .dst = 2, .bytes = 100},
  };
  EXPECT_TRUE(aggregate_fabric_messages(topo, msgs).empty());
}

TEST(TopologyExchange, IntraSubsetMatchesTheLinkSchedule) {
  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000},
      {.src = 2, .dst = 3, .bytes = 1'000'000},
      {.src = 1, .dst = 0, .bytes = 500'000},
  };
  std::vector<LinkMessage> plain = msgs;
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);

  LinkModel island = topo.intra;
  island.nvlink_devices = topo.total_devices();
  const ExchangeReport link_rep = simulate_exchange(island, plain, topo.total_devices());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_DOUBLE_EQ(msgs[i].start_us, plain[i].start_us);
    EXPECT_DOUBLE_EQ(msgs[i].done_us, plain[i].done_us);
  }
  EXPECT_EQ(rep.inter_messages, 0);
  EXPECT_EQ(rep.inter_bytes, 0);
  EXPECT_EQ(rep.intra_messages, 3);
  EXPECT_EQ(rep.intra_bytes, 2'500'000);
  EXPECT_DOUBLE_EQ(rep.finish_us, link_rep.finish_us);
}

TEST(TopologyExchange, FabricAndNvlinkAreDisjointAndOverlap) {
  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000},  // NVLink
      {.src = 0, .dst = 2, .bytes = 1'000'000},  // fabric
  };
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);
  const double nv = topo.intra.nvlink_latency_us + 1'000'000 / (topo.intra.nvlink_bw_gbs * 1e3);
  const double fab =
      fabric_wire_time_us(topo.fabric, 1'000'000 + topo.fabric.frame_header_bytes);
  // Different networks: both start at t = 0 even from the same device.
  EXPECT_DOUBLE_EQ(msgs[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(msgs[1].start_us, 0.0);
  EXPECT_DOUBLE_EQ(msgs[0].done_us, nv);
  EXPECT_DOUBLE_EQ(msgs[1].done_us, fab);
  EXPECT_DOUBLE_EQ(rep.arrival_us[1], nv);
  EXPECT_DOUBLE_EQ(rep.arrival_us[2], fab);
  EXPECT_DOUBLE_EQ(rep.intra_finish_us, nv);
  EXPECT_DOUBLE_EQ(rep.inter_finish_us, fab);
  EXPECT_DOUBLE_EQ(rep.finish_us, std::max(nv, fab));
  EXPECT_EQ(rep.intra_bytes, 1'000'000);
  EXPECT_EQ(rep.inter_bytes, 1'000'000 + topo.fabric.frame_header_bytes);
}

TEST(TopologyExchange, NicEgressHonoursTheInjectionRate) {
  NodeTopology topo = cluster(3, 1);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 240'000},
      {.src = 0, .dst = 2, .bytes = 240'000},
  };
  const std::int64_t wire_bytes = 240'000 + topo.fabric.frame_header_bytes;
  simulate_topology_exchange(topo, msgs);
  // One NIC on node 0: the second aggregate waits out the injection period
  // (not the full delivery — the pipe can be refilled while the first
  // message is still in flight).
  EXPECT_DOUBLE_EQ(msgs[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(msgs[1].start_us, wire_bytes / (topo.fabric.injection_rate_gbs * 1e3));

  // Halving the injection rate doubles the gap while each message still
  // travels at line rate.
  topo.fabric.injection_rate_gbs = 12.0;
  std::vector<LinkMessage> slow = {
      {.src = 0, .dst = 1, .bytes = 240'000},
      {.src = 0, .dst = 2, .bytes = 240'000},
  };
  simulate_topology_exchange(topo, slow);
  EXPECT_DOUBLE_EQ(slow[1].start_us, wire_bytes / (12.0 * 1e3));
  EXPECT_DOUBLE_EQ(slow[1].done_us,
                   slow[1].start_us + fabric_wire_time_us(topo.fabric, wire_bytes));
}

TEST(TopologyExchange, NicIngressSerialisesConvergingAggregates) {
  const NodeTopology topo = cluster(3, 1);
  std::vector<LinkMessage> msgs = {
      {.src = 1, .dst = 0, .bytes = 240'000},
      {.src = 2, .dst = 0, .bytes = 240'000},
  };
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);
  // Node 0 owns one NIC ingress: the second delivery queues behind the first.
  EXPECT_DOUBLE_EQ(msgs[1].start_us, msgs[0].done_us);
  EXPECT_DOUBLE_EQ(rep.arrival_us[0], msgs[1].done_us);
}

TEST(TopologyExchange, SwitchCrossbarCouplesDisjointPairs) {
  const NodeTopology topo = cluster(4, 1);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 240'000},
      {.src = 2, .dst = 3, .bytes = 240'000},
  };
  simulate_topology_exchange(topo, msgs);
  const std::int64_t wire_bytes = 240'000 + topo.fabric.frame_header_bytes;
  // Distinct NICs on every endpoint, but one shared crossbar: the second
  // pair waits out the first's switch occupancy (ties broken by (src, dst)).
  EXPECT_DOUBLE_EQ(msgs[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(msgs[1].start_us, wire_bytes / (topo.fabric.switch_bw_gbs * 1e3));
}

TEST(TopologyExchange, DroppedAggregateLosesEveryFrame) {
  faultsim::FaultPlan plan;
  plan.schedule.push_back(faultsim::ScheduledFault{faultsim::FaultKind::msg_drop, 0, 1,
                                                   "fabric-exchange r0->r2"});
  faultsim::ScopedFaultInjection fi(plan);

  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 2, .bytes = 100},
      {.src = 0, .dst = 2, .bytes = 200},
      {.src = 0, .dst = 3, .bytes = 300},
  };
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);
  // The wire message is the fabric's unit of loss: both coalesced slabs die.
  EXPECT_TRUE(msgs[0].dropped);
  EXPECT_TRUE(msgs[1].dropped);
  EXPECT_FALSE(msgs[2].dropped);
  EXPECT_EQ(rep.dropped, 2);
  EXPECT_DOUBLE_EQ(rep.arrival_us[2], 0.0) << "nothing was delivered to device 2";
  // The lost aggregate still occupied the wire: node 1's NIC ingress stays
  // busy until its (undelivered) completion, so the surviving aggregate to
  // device 3 queues behind it.
  EXPECT_DOUBLE_EQ(msgs[2].start_us, msgs[0].done_us);
}

TEST(TopologyExchange, CorruptedAggregateDamagesExactlyOneFrame) {
  faultsim::FaultPlan plan;
  plan.seed = 9;
  plan.schedule.push_back(faultsim::ScheduledFault{faultsim::FaultKind::msg_corrupt, 0, 1,
                                                   "fabric-exchange r0->r2"});
  faultsim::ScopedFaultInjection fi(plan);

  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 2, .bytes = 100},
      {.src = 0, .dst = 2, .bytes = 200},
  };
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);
  // One flipped bit on the wire lands in exactly one frame; framing
  // localises the damage so the receiver can retransmit one slab.
  EXPECT_EQ(rep.corrupted, 1);
  EXPECT_NE(msgs[0].corrupted, msgs[1].corrupted);
  const LinkMessage& hit = msgs[0].corrupted ? msgs[0] : msgs[1];
  const LinkMessage& clean = msgs[0].corrupted ? msgs[1] : msgs[0];
  EXPECT_NE(hit.corrupt_key, 0u);
  EXPECT_EQ(clean.corrupt_key, 0u);
  // Corruption is a payload event, not a timing event.
  const std::int64_t wire_bytes = 300 + 2 * topo.fabric.frame_header_bytes;
  EXPECT_DOUBLE_EQ(hit.done_us, fabric_wire_time_us(topo.fabric, wire_bytes));
  EXPECT_DOUBLE_EQ(rep.arrival_us[2], hit.done_us);
}

TEST(TopologyExchange, DelayedAggregatePaysTheSpikeOnce) {
  faultsim::FaultPlan plan;
  plan.delay_latency_us = 25.0;
  plan.delay_bw_factor = 2.0;
  plan.schedule.push_back(faultsim::ScheduledFault{faultsim::FaultKind::msg_delay, 0, 1,
                                                   "fabric-exchange r0->r2"});
  faultsim::ScopedFaultInjection fi(plan);

  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 2, .bytes = 120'000},
      {.src = 0, .dst = 2, .bytes = 120'000},
  };
  const FabricExchangeReport rep = simulate_topology_exchange(topo, msgs);
  EXPECT_EQ(rep.delayed, 1);
  EXPECT_TRUE(msgs[0].delayed);
  const std::int64_t wire_bytes = 240'000 + 2 * topo.fabric.frame_header_bytes;
  const double clean = fabric_wire_time_us(topo.fabric, wire_bytes);
  // The spike hits the coalesced wire message once — not once per slab.
  const double extra = 25.0 + wire_bytes / (topo.fabric.nic_bw_gbs * 1e3);
  EXPECT_NEAR(msgs[0].done_us, clean + extra, 1e-9);
  EXPECT_DOUBLE_EQ(msgs[1].done_us, msgs[0].done_us);
}

TEST(TopologyExchange, FaultedScheduleIsDeterministic) {
  auto run = [] {
    faultsim::FaultPlan plan;
    plan.seed = 31;
    plan.p_msg_drop = 0.3;
    plan.p_msg_delay = 0.3;
    faultsim::ScopedFaultInjection fi(plan);
    const NodeTopology topo = cluster(2, 2);
    std::vector<LinkMessage> msgs;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j) msgs.push_back({.src = i, .dst = j, .bytes = 250'000});
      }
    }
    simulate_topology_exchange(topo, msgs);
    return msgs;
  };
  const auto a = run();
  const auto b = run();
  int faulted = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].delayed, b[i].delayed);
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us);
    EXPECT_DOUBLE_EQ(a[i].done_us, b[i].done_us);
    faulted += (a[i].dropped || a[i].delayed) ? 1 : 0;
  }
  EXPECT_GT(faulted, 0) << "the storm must actually fire over 12 messages";
}

TEST(TopologyExchange, RejectsMalformedMessages) {
  const NodeTopology topo = cluster(2, 2);
  std::vector<LinkMessage> self = {{.src = 1, .dst = 1, .bytes = 8}};
  EXPECT_THROW(simulate_topology_exchange(topo, self), std::invalid_argument);
  std::vector<LinkMessage> range = {{.src = 0, .dst = 5, .bytes = 8}};
  EXPECT_THROW(simulate_topology_exchange(topo, range), std::invalid_argument);
  std::vector<LinkMessage> negative = {{.src = 0, .dst = 1, .bytes = -1}};
  EXPECT_THROW(simulate_topology_exchange(topo, negative), std::invalid_argument);
}

TEST(NodeLoss, ScheduledNodeCheckFiresAtItsSiteOnly) {
  faultsim::FaultPlan plan;
  plan.schedule.push_back(
      faultsim::ScheduledFault{faultsim::FaultKind::node_loss, 0, 1, "node n1"});
  faultsim::ScopedFaultInjection fi(plan);
  faultsim::Injector* inj = faultsim::Injector::current();
  ASSERT_NE(inj, nullptr);

  EXPECT_FALSE(inj->on_node_check("node n0 @ 1x1x2x2"));
  EXPECT_TRUE(inj->on_node_check("node n1 @ 1x1x2x2"));
  // repeat = 1: the node is lost once; later consults of the same site draw
  // from the (zero-probability) stream and stay healthy.
  EXPECT_FALSE(inj->on_node_check("node n1 @ 1x1x2x2"));

  const std::vector<faultsim::FaultEvent> log = inj->log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, faultsim::FaultKind::node_loss);
  EXPECT_EQ(log[0].site, "node n1 @ 1x1x2x2");
}

}  // namespace
}  // namespace gpusim
