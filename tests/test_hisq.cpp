// HISQ link construction, polar projection, and gauge covariance — the
// sharpest integration tests in the suite: physics must be blind to local
// SU(3) rotations of everything.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "lattice/gauge_transform.hpp"
#include "lattice/hisq.hpp"
#include "lattice/metropolis.hpp"
#include "su3/random_su3.hpp"

namespace milc {
namespace {

TEST(PolarProject, FixesUnitaryMatrices) {
  Rng rng(1);
  for (int t = 0; t < 5; ++t) {
    const auto u = random_su3(rng);
    EXPECT_LT(max_abs_diff(polar_project(u), u), 1e-10);
  }
}

TEST(PolarProject, ProducesUnitaryFactor) {
  Rng rng(2);
  for (int t = 0; t < 5; ++t) {
    // A generic nonsingular matrix: sum of two random SU(3).
    auto m = random_su3(rng);
    const auto b = random_su3(rng);
    for (int i = 0; i < kColors; ++i) {
      for (int j = 0; j < kColors; ++j) m.e[i][j] += cscale(0.7, b.e[i][j]);
    }
    const auto p = polar_project(m);
    EXPECT_LT(unitarity_defect(p), 1e-9);
  }
}

TEST(PolarProject, HermitianPositivePolarPart) {
  // M = P H with H = P^dag M Hermitian positive definite.
  Rng rng(3);
  auto m = random_su3(rng);
  const auto b = random_su3(rng);
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) m.e[i][j] += cscale(0.5, b.e[i][j]);
  }
  const auto p = polar_project(m);
  const auto h = matmul(adjoint(p), m);
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      // Hermitian: h_ij == conj(h_ji)
      EXPECT_NEAR(h.e[i][j].re, h.e[j][i].re, 1e-9);
      EXPECT_NEAR(h.e[i][j].im, -h.e[j][i].im, 1e-9);
    }
    EXPECT_GT(h.e[i][i].re, 0.0);  // positive diagonal
  }
}

TEST(PolarProject, IsGaugeCovariant) {
  // polar(A M B^dag) == A polar(M) B^dag for unitary A, B — the property a
  // Gram–Schmidt projection would violate.
  Rng rng(4);
  auto m = random_su3(rng);
  const auto pert = random_su3(rng);
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) m.e[i][j] += cscale(0.6, pert.e[i][j]);
  }
  const auto a = random_su3(rng);
  const auto b = random_su3(rng);
  const auto lhs = polar_project(matmul(matmul(a, m), adjoint(b)));
  const auto rhs = matmul(matmul(a, polar_project(m)), adjoint(b));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
}

TEST(Hisq, UnitThinLinksGiveUnitFatAndLong) {
  LatticeGeom geom(4);
  GaugeConfiguration thin(geom);
  for (std::int64_t x = 0; x < geom.volume(); ++x) {
    for (int mu = 0; mu < kNdim; ++mu) thin.fat(x, mu) = SU3Matrix<dcomplex>::identity();
  }
  const GaugeConfiguration hisq = build_hisq_links(geom, thin);
  for (std::int64_t x = 0; x < geom.volume(); x += 11) {
    for (int mu = 0; mu < kNdim; ++mu) {
      EXPECT_LT(max_abs_diff(hisq.fat(x, mu), SU3Matrix<dcomplex>::identity()), 1e-10);
      EXPECT_LT(max_abs_diff(hisq.lng(x, mu), SU3Matrix<dcomplex>::identity()), 1e-12);
    }
  }
}

TEST(Hisq, NaikLinkIsThreeLinkProduct) {
  LatticeGeom geom(4);
  GaugeConfiguration thin(geom);
  thin.fill_random(7);
  const GaugeConfiguration hisq = build_hisq_links(geom, thin);
  const std::int64_t x = 5;
  const Coords c = geom.coords(x);
  for (int mu = 0; mu < kNdim; ++mu) {
    const std::int64_t x1 = geom.full_index(geom.displace(c, mu, 1));
    const std::int64_t x2 = geom.full_index(geom.displace(c, mu, 2));
    const auto expect = matmul(matmul(thin.fat(x, mu), thin.fat(x1, mu)), thin.fat(x2, mu));
    EXPECT_LT(max_abs_diff(hisq.lng(x, mu), expect), 1e-12);
  }
}

TEST(Hisq, FatLinksAreUnitary) {
  LatticeGeom geom(4);
  GaugeConfiguration thin(geom);
  thin.fill_random(8);
  const GaugeConfiguration hisq = build_hisq_links(geom, thin);
  for (std::int64_t x = 0; x < geom.volume(); x += 13) {
    for (int mu = 0; mu < kNdim; ++mu) {
      EXPECT_LT(unitarity_defect(hisq.fat(x, mu)), 1e-8);
    }
  }
}

TEST(Hisq, SmearingCommutesWithGaugeTransformation) {
  LatticeGeom geom(4);
  GaugeConfiguration thin(geom);
  thin.fill_random(9);
  GaugeTransform omega(geom);
  omega.fill_random(10);

  // Transform then smear …
  const GaugeConfiguration thin_t = omega.apply(geom, thin);
  const GaugeConfiguration smeared_after = build_hisq_links(geom, thin_t);
  // … versus smear then transform.
  const GaugeConfiguration smeared_before = omega.apply(geom, build_hisq_links(geom, thin));

  double max_diff = 0.0;
  for (std::int64_t x = 0; x < geom.volume(); x += 7) {
    for (int mu = 0; mu < kNdim; ++mu) {
      max_diff = std::max(max_diff,
                          max_abs_diff(smeared_after.fat(x, mu), smeared_before.fat(x, mu)));
      max_diff = std::max(max_diff,
                          max_abs_diff(smeared_after.lng(x, mu), smeared_before.lng(x, mu)));
    }
  }
  EXPECT_LT(max_diff, 1e-8);
}

TEST(GaugeCovariance, PlaquetteIsInvariant) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(11);
  GaugeTransform omega(geom);
  omega.fill_random(12);
  const double before = average_plaquette(geom, cfg);
  const GaugeConfiguration t = omega.apply(geom, cfg);
  EXPECT_NEAR(average_plaquette(geom, t), before, 1e-10);
}

TEST(GaugeCovariance, DslashIsCovariant) {
  // D[U^Omega](Omega b) == Omega (D[U] b): exercises the gather, adjoints,
  // neighbour tables and the operator in one identity.
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(13);
  GaugeTransform omega(geom);
  omega.fill_random(14);

  ColorField b(geom, Parity::Odd);
  b.fill_random(15);

  // Left side: transformed gauge + source.
  const GaugeConfiguration cfg_t = omega.apply(geom, cfg);
  const ColorField b_t = omega.apply(geom, b);
  GaugeView view_t(geom, cfg_t, Parity::Even);
  NeighborTable nbr(geom, Parity::Even);
  ColorField lhs(geom, Parity::Even);
  dslash_reference(view_t, nbr, b_t, lhs);

  // Right side: transform the untransformed result.
  GaugeView view(geom, cfg, Parity::Even);
  ColorField out(geom, Parity::Even);
  dslash_reference(view, nbr, b, out);
  const ColorField rhs = omega.apply(geom, out);

  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
}

TEST(Integration, MetropolisHisqDslashChain) {
  // Thermalise thin links, build HISQ fat/long links, apply Dslash: the full
  // production pipeline in miniature.
  LatticeGeom geom(4);
  GaugeConfiguration thin(geom);
  thin.fill_random(16);
  MetropolisOptions mopts;
  mopts.beta = 6.0;
  thermalize(geom, thin, mopts, 2);

  const GaugeConfiguration hisq = build_hisq_links(geom, thin);
  GaugeView view(geom, hisq, Parity::Even);
  NeighborTable nbr(geom, Parity::Even);
  ColorField b(geom, Parity::Odd), c(geom, Parity::Even);
  b.fill_random(17);
  dslash_reference(view, nbr, b, c);
  EXPECT_GT(norm2(c), 1.0);

  // Norm preservation bound: |D b|^2 <= (16)^2 |b|^2 for unitary links.
  EXPECT_LT(norm2(c), 256.0 * norm2(b) + 1.0);
}

}  // namespace
}  // namespace milc
