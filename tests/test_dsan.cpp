// test_dsan.cpp — the distributed sanitizer: clean on every real protocol
// flow, loud on every seeded defect.
//
// Two halves.  The clean half records genuine runs — plain grids, the
// hardened retransmit flow, a multi-node fabric exchange, a checkpointed
// sharded-CG solve — and asserts every checker comes back clean (and that
// recording itself leaves the computed field bit-for-bit untouched).  The
// bug zoo then mutates recorded traces — Trace.events is a plain vector for
// exactly this purpose — to prove each checker fires on its defect with the
// site-grammar names in the offence notes: a race needs the pack/unpack
// sites, a protocol lint the exchange site, or the finding is not actionable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "dsan/check.hpp"
#include "dsan/record.hpp"
#include "multidev/runner.hpp"
#include "multidev/sharded_cg.hpp"

namespace milc::multidev {
namespace {

using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

constexpr int kL = 12;

const RunRequest kReq{.strategy = Strategy::LP3_1,
                      .order = IndexOrder::kMajor,
                      .local_size = 768,
                      .variant = Variant::SYCL};

/// Record one multi-device run as a dsan trace (hardened when `plan` is
/// given, fabric-priced when `topo` spans nodes).
dsan::Trace record_run(const PartitionGrid& grid, const FaultPlan* plan = nullptr,
                       gpusim::NodeTopology topo = {}) {
  DslashProblem problem(kL, /*seed=*/3);
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = grid;
  mreq.req = kReq;
  mreq.topo = topo;
  dsan::ScopedRecorder sr;
  if (plan != nullptr) {
    ScopedFaultInjection fi(*plan);
    (void)runner.run(problem, mreq);
  } else {
    (void)runner.run(problem, mreq);
  }
  return sr.rec.take();
}

FaultPlan one_corruption_plan() {
  FaultPlan plan;
  plan.seed = 11;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::msg_corrupt, 0, 1, "halo-exchange r0->r1"});
  return plan;
}

template <typename Pred>
std::size_t find_event(const dsan::Trace& t, Pred pred, std::size_t from = 0) {
  for (std::size_t i = from; i < t.events.size(); ++i) {
    if (pred(t.events[i])) return i;
  }
  return t.events.size();
}

bool note_contains(const ksan::SanitizerReport& rep, const std::string& needle) {
  return std::any_of(rep.records.begin(), rep.records.end(), [&](const ksan::Offence& o) {
    return o.note.find(needle) != std::string::npos;
  });
}

void expect_all_clean(const std::vector<ksan::SanitizerReport>& reports) {
  ASSERT_EQ(reports.size(), 4u);  // happens-before, messages, schedule, protocol
  for (const ksan::SanitizerReport& rep : reports) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_EQ(rep.lint_count(), 0u) << rep.summary();
  }
}

// ---------------------------------------------------------------- clean half

TEST(DsanClean, PlainTwoDeviceRunChecksClean) {
  DslashProblem problem(kL, /*seed=*/3);
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid::along(3, 2);
  mreq.req = kReq;
  const std::vector<ksan::SanitizerReport> reports = runner.dsan_check(problem, mreq);
  expect_all_clean(reports);
  // The trace must be substantive: conflicting-pair and pairing checks ran.
  EXPECT_GT(reports[0].checked_global, 0u) << reports[0].summary();
  EXPECT_GT(reports[1].checked_global, 0u) << reports[1].summary();
}

TEST(DsanClean, MultiDimSplitChecksClean) {
  DslashProblem problem(kL, /*seed=*/3);
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid{.devices = {1, 1, 2, 2}};
  mreq.req = kReq;
  expect_all_clean(runner.dsan_check(problem, mreq));
}

TEST(DsanClean, RecordingLeavesTheFieldBitForBitUntouched) {
  DslashProblem bare(kL, /*seed=*/9);
  DslashProblem watched(kL, /*seed=*/9);
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid::along(3, 2);
  mreq.req = kReq;
  (void)runner.run(bare, mreq);
  {
    dsan::ScopedRecorder sr;
    (void)runner.run(watched, mreq);
    EXPECT_FALSE(sr.rec.trace().empty());
  }
  EXPECT_EQ(max_abs_diff(bare.c(), watched.c()), 0.0)
      << "installing the recorder must not perturb the computation";
}

TEST(DsanClean, HardenedRetransmitFlowChecksClean) {
  // One corrupted delivery forces a checksum reject + round-2 retransmit;
  // the recorded flow (fresh uid, verdict, unpack from the accepted rx
  // buffer) must satisfy every checker.
  const FaultPlan plan = one_corruption_plan();
  const dsan::Trace trace = record_run(PartitionGrid::along(3, 2), &plan);
  const std::size_t retx = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Send && e.round > 1; });
  ASSERT_LT(retx, trace.size()) << "the corruption must force a retransmission";
  expect_all_clean(dsan::check_all(trace, "hardened"));
}

TEST(DsanClean, MultiNodeFabricExchangeChecksClean) {
  const dsan::Trace trace =
      record_run(PartitionGrid{.devices = {1, 1, 2, 2}}, nullptr, gpusim::cluster(2, 2));
  const std::size_t fabric = find_event(trace, [](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Send && e.src_node != e.dst_node;
  });
  ASSERT_LT(fabric, trace.size()) << "a 2x2 cluster run must cross the fabric";
  EXPECT_TRUE(trace.events[fabric].aggregated)
      << "fabric crossings ride aggregated frames in the real protocol";
  expect_all_clean(dsan::check_all(trace, "fabric"));
}

TEST(DsanClean, CheckpointedShardedCgSolveChecksClean) {
  ShardedCgConfig cfg;
  cfg.cg.max_iterations = 6;
  cfg.checkpoint_interval = 2;
  ShardedCgSolver solver(Coords{8, 8, 8, 12}, /*gauge_seed=*/21, /*mass=*/0.5,
                         PartitionGrid::along(3, 2), cfg);
  ColorField b(solver.geom(), Parity::Even);
  b.fill_random(/*seed=*/77);
  ColorField x(solver.geom(), Parity::Even);
  ShardedCgResult result;
  const std::vector<ksan::SanitizerReport> reports = solver.dsan_check(b, x, &result);
  expect_all_clean(reports);
  EXPECT_GT(result.checkpoints_taken, 0)
      << "the solve must actually snapshot for CheckpointInWindow coverage";
}

// ------------------------------------------------------------------ bug zoo

TEST(DsanBugZoo, ErasedDeliveriesAreACrossDeviceRace) {
  // Erase every delivery into one shard: with no Send->Recv edge left into
  // that actor, its unpack reads of the wires are unordered against the
  // producer's pack writes — a cross-device race.  (Erasing a single recv
  // is not enough: the surviving sibling delivery transitively orders the
  // earlier pack before the unpack via the producer's program order.)
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2));
  const std::size_t ri = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Recv; });
  ASSERT_LT(ri, trace.size());
  const dsan::Event recv = trace.events[ri];
  const std::string pack_site =
      "halo-pack r" + std::to_string(recv.src) + "->r" + std::to_string(recv.dst);
  std::erase_if(trace.events, [&recv](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Recv && e.dst == recv.dst;
  });

  const ksan::SanitizerReport rep = dsan::check_happens_before(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::CrossDeviceRace), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, pack_site)) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "halo-unpack")) << rep.summary();
}

TEST(DsanBugZoo, ErasedRecvIsAnUnmatchedSend) {
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2));
  const std::size_t ri = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Recv; });
  ASSERT_LT(ri, trace.size());
  const std::uint64_t msg = trace.events[ri].msg;
  const std::size_t si = find_event(trace, [msg](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Send && e.msg == msg;
  });
  ASSERT_LT(si, trace.size());
  const std::string send_site = trace.events[si].site;
  trace.events.erase(trace.events.begin() + static_cast<std::ptrdiff_t>(ri));

  const ksan::SanitizerReport rep = dsan::check_messages(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::UnmatchedMessage), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "site '" + send_site + "': send never received"))
      << rep.summary();
}

TEST(DsanBugZoo, DuplicatedDeliveryIsAnUnmatchedMessage) {
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2));
  const std::size_t ri = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Recv; });
  ASSERT_LT(ri, trace.size());
  trace.events.insert(trace.events.begin() + static_cast<std::ptrdiff_t>(ri) + 1,
                      trace.events[ri]);

  const ksan::SanitizerReport rep = dsan::check_messages(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::UnmatchedMessage), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "duplicated delivery")) << rep.summary();
}

TEST(DsanBugZoo, RecvWithoutASendIsAnUnmatchedMessage) {
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2));
  const std::size_t ri = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Recv; });
  ASSERT_LT(ri, trace.size());
  dsan::Event ghost_recv = trace.events[ri];
  ghost_recv.msg = 999'999;  // a uid no send ever issued
  trace.events.push_back(std::move(ghost_recv));

  const ksan::SanitizerReport rep = dsan::check_messages(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::UnmatchedMessage), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "recv without a matching send")) << rep.summary();
}

TEST(DsanBugZoo, ReorderedUnpackIsAGhostReadBeforeUnpack) {
  // Slide one unpack launch after its own shard's boundary launch: a
  // same-actor reordering, so not a race — but the boundary read of those
  // ghost slots is no longer ordered after the scatter that fills them.
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2));
  const std::size_t bi = find_event(trace, [](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Kernel && e.site == "dslash-boundary r0";
  });
  ASSERT_LT(bi, trace.size());
  const std::size_t ui = find_event(trace, [](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Unpack && e.actor == 0;
  });
  ASSERT_LT(ui, bi);
  const std::string unpack_site = trace.events[ui].site;
  std::rotate(trace.events.begin() + static_cast<std::ptrdiff_t>(ui),
              trace.events.begin() + static_cast<std::ptrdiff_t>(ui) + 1,
              trace.events.begin() + static_cast<std::ptrdiff_t>(bi) + 1);

  const ksan::SanitizerReport hb = dsan::check_happens_before(trace, "zoo");
  EXPECT_GT(hb.count(ksan::Category::GhostReadBeforeUnpack), 0u) << hb.summary();
  EXPECT_TRUE(note_contains(hb, unpack_site)) << hb.summary();
  EXPECT_TRUE(note_contains(hb, "dslash-boundary r0")) << hb.summary();

  // The protocol checker sees the same defect as its advisory shape lint.
  const ksan::SanitizerReport proto = dsan::check_protocol(trace, "zoo");
  EXPECT_GT(proto.count(ksan::Category::BoundaryBeforeUnpack), 0u) << proto.summary();
  EXPECT_TRUE(note_contains(proto, "dslash-boundary r0")) << proto.summary();
}

TEST(DsanBugZoo, RepackDuringRetransmitIsWireBufferReuse) {
  // Clone the pack of the corrupted message to just after its round-2
  // retransmission: the repack overwrites a wire whose transmission has not
  // resolved yet (its delivery is still in flight) — the in-flight-DMA bug.
  const FaultPlan plan = one_corruption_plan();
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2), &plan);
  const std::size_t si = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Send && e.round > 1; });
  ASSERT_LT(si, trace.size());
  ASSERT_FALSE(trace.events[si].reads.empty());
  const dsan::MemSpan payload = trace.events[si].reads.front();
  const std::size_t pi = find_event(trace, [&payload](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Pack &&
           std::any_of(e.writes.begin(), e.writes.end(),
                       [&payload](const dsan::MemSpan& w) { return w.overlaps(payload); });
  });
  ASSERT_LT(pi, trace.size());
  trace.events.insert(trace.events.begin() + static_cast<std::ptrdiff_t>(si) + 1,
                      trace.events[pi]);

  const ksan::SanitizerReport rep = dsan::check_happens_before(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::WireBufferReuse), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "repack of wire for site 'halo-exchange r0->r1"))
      << rep.summary();
  EXPECT_TRUE(note_contains(rep, "still in flight")) << rep.summary();
}

TEST(DsanBugZoo, WaitCycleAndStarvationAreScheduleDeadlocks) {
  // A synthetic wait graph the greedy schedulers can never emit: two fabric
  // transmissions each blocked on the port the other holds, plus one link
  // message the schedule ended without ever granting a port.
  dsan::Trace trace;
  dsan::Event a;
  a.kind = dsan::EventKind::WireSchedule;
  a.site = "fabric-exchange r0->r2 n0->n1";
  a.sched = 0;
  a.waits_on = {1};
  dsan::Event b = a;
  b.site = "fabric-exchange r2->r0 n1->n0";
  b.sched = 1;
  b.waits_on = {0};
  dsan::Event c;
  c.kind = dsan::EventKind::WireSchedule;
  c.site = "halo-exchange r1->r3";
  c.sched = 2;
  c.never_started = true;
  trace.events = {a, b, c};

  const ksan::SanitizerReport rep = dsan::check_schedule(trace, "zoo");
  EXPECT_GE(rep.count(ksan::Category::ScheduleDeadlock), 2u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "circular wait")) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "fabric-exchange r0->r2 n0->n1")) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "site 'halo-exchange r1->r3': starved")) << rep.summary();
}

TEST(DsanBugZoo, ErasedVerdictOnARetransmitIsChecksumSkipped) {
  const FaultPlan plan = one_corruption_plan();
  dsan::Trace trace = record_run(PartitionGrid::along(3, 2), &plan);
  const std::size_t ri = find_event(
      trace, [](const dsan::Event& e) { return e.kind == dsan::EventKind::Recv && e.round > 1; });
  ASSERT_LT(ri, trace.size());
  const std::uint64_t msg = trace.events[ri].msg;
  const std::string site = trace.events[ri].site;
  std::erase_if(trace.events, [msg](const dsan::Event& e) {
    return e.kind == dsan::EventKind::ChecksumVerdict && e.msg == msg;
  });

  const ksan::SanitizerReport rep = dsan::check_protocol(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::ChecksumSkipped), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(
      rep, "site '" + site + "': retransmitted delivery accepted without a checksum verdict"))
      << rep.summary();
}

TEST(DsanBugZoo, StrippedAggregationIsAnUnaggregatedFramesLint) {
  dsan::Trace trace =
      record_run(PartitionGrid{.devices = {1, 1, 2, 2}}, nullptr, gpusim::cluster(2, 2));
  const std::size_t si = find_event(trace, [](const dsan::Event& e) {
    return e.kind == dsan::EventKind::Send && e.src_node != e.dst_node;
  });
  ASSERT_LT(si, trace.size());
  trace.events[si].aggregated = false;
  const std::string site = trace.events[si].site;

  const ksan::SanitizerReport rep = dsan::check_protocol(trace, "zoo");
  EXPECT_GT(rep.count(ksan::Category::UnaggregatedFrames), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "site '" + site + "': fabric crossing without frame aggregation"))
      << rep.summary();
}

TEST(DsanBugZoo, CheckpointWithAMessageInFlightIsCheckpointInWindow) {
  // Recorded live (not mutated): a snapshot taken between a send and its
  // delivery is exactly the inconsistent-cut bug the lint exists for.
  dsan::ScopedRecorder sr;
  std::vector<double> payload(16);
  const std::uint64_t msg =
      sr.rec.send(0, 1, "halo-exchange r0->r1", /*round=*/1,
                  dsan::span_of(payload.data(), payload.size()),
                  /*dropped=*/false, /*aggregated=*/false);
  sr.rec.checkpoint(/*iteration=*/5, "mid-flight snapshot");
  sr.rec.recv(msg, /*delivered=*/true);

  const ksan::SanitizerReport rep = dsan::check_protocol(sr.rec.trace(), "zoo");
  EXPECT_GT(rep.count(ksan::Category::CheckpointInWindow), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(
      rep, "checkpoint with site 'halo-exchange r0->r1' in flight at iteration 5"))
      << rep.summary();

  // The pairing itself is sound — only the snapshot placement is not.
  EXPECT_TRUE(dsan::check_messages(sr.rec.trace(), "zoo").clean());
}

TEST(DsanBugZoo, ParticipationBetweenRejoinAndResyncFlags) {
  // A rejoined rank computes on a stale (or empty) replica until its resync
  // declares the re-replicated state consistent — any pack/kernel/send in
  // between is the RejoinBeforeResync defect.  A rejoin with no resync at
  // all flags too.
  dsan::ScopedRecorder sr;
  sr.rec.rejoin(1, "device r1 healed");
  sr.rec.kernel(1, "dslash-interior r1");
  sr.rec.resync(1, /*msg=*/0, "snapshot replay");
  sr.rec.rejoin(2, "device r2 healed");  // never resynced

  const ksan::SanitizerReport rep = dsan::check_protocol(sr.rec.trace(), "zoo");
  EXPECT_GE(rep.count(ksan::Category::RejoinBeforeResync), 2u) << rep.summary();
  EXPECT_TRUE(note_contains(
      rep, "site 'dslash-interior r1': rejoined actor r1 participated before its resync"))
      << rep.summary();
  EXPECT_TRUE(note_contains(rep, "rejoin of actor r2 has no resync on record"))
      << rep.summary();
}

TEST(DsanBugZoo, ResyncOnAnUnverifiedTransferIsAStaleReplicaRead) {
  // A resync that names its re-replication transfer must see that transfer's
  // *passing* checksum verdict first — marking the replica live on an
  // unverified (here: failed) payload reads a stale shard.
  dsan::ScopedRecorder sr;
  std::vector<double> slab(32);
  const std::uint64_t msg =
      sr.rec.send(0, 1, "rereplicate r0->r1", /*round=*/1,
                  dsan::span_of(slab.data(), slab.size()),
                  /*dropped=*/false, /*aggregated=*/false);
  sr.rec.checksum(msg, /*ok=*/false);
  sr.rec.recv(msg, /*delivered=*/false);
  sr.rec.rejoin(1, "spare adopted");
  sr.rec.resync(1, msg, "transfer complete");

  const ksan::SanitizerReport rep = dsan::check_protocol(sr.rec.trace(), "zoo");
  EXPECT_GT(rep.count(ksan::Category::StaleReplicaRead), 0u) << rep.summary();
  EXPECT_TRUE(note_contains(
      rep, "resync of actor r1 before its re-replication transfer verified"))
      << rep.summary();
}

TEST(DsanBugZoo, PromotionWithoutItsAuditIsSnapshotPromotedBeforeAudit) {
  // Async checkpointing may only promote a staged snapshot after the
  // deferred audit of the *same iteration* passed.  An audit of a different
  // iteration does not cover it.
  dsan::ScopedRecorder sr;
  sr.rec.checkpoint(/*iteration=*/4, "staged");
  sr.rec.snapshot_audit(4, "true residual ok");
  sr.rec.snapshot_promote(4, "durable");   // properly audited: no finding
  sr.rec.checkpoint(/*iteration=*/8, "staged");
  sr.rec.snapshot_promote(8, "durable");   // promoted with no audit: flags

  const ksan::SanitizerReport rep = dsan::check_protocol(sr.rec.trace(), "zoo");
  EXPECT_EQ(rep.count(ksan::Category::SnapshotPromotedBeforeAudit), 1u) << rep.summary();
  EXPECT_TRUE(note_contains(rep, "staged snapshot promoted with no passing audit at iteration 8"))
      << rep.summary();
}

TEST(DsanClean, FullElasticRecoverySequenceChecksClean) {
  // The legit protocol order — re-replication transfer sent, checksummed,
  // delivered; rejoin; resync naming the verified transfer; staged snapshot
  // audited then promoted — must satisfy the protocol and pairing checkers.
  dsan::ScopedRecorder sr;
  std::vector<double> slab(32);
  const std::uint64_t msg =
      sr.rec.send(0, 1, "rereplicate r0->r1", /*round=*/1,
                  dsan::span_of(slab.data(), slab.size()),
                  /*dropped=*/false, /*aggregated=*/false);
  sr.rec.checksum(msg, /*ok=*/true);
  sr.rec.recv(msg, /*delivered=*/true);
  sr.rec.rejoin(1, "device r1 healed");
  sr.rec.resync(1, msg, "replica verified");
  sr.rec.checkpoint(/*iteration=*/6, "staged");
  sr.rec.snapshot_audit(6, "true residual ok");
  sr.rec.snapshot_promote(6, "durable");

  EXPECT_TRUE(dsan::check_protocol(sr.rec.trace(), "elastic").clean());
  EXPECT_TRUE(dsan::check_messages(sr.rec.trace(), "elastic").clean());
}

}  // namespace
}  // namespace milc::multidev
