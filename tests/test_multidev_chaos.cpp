// test_multidev_chaos.cpp — the hardened multi-device path under seeded
// fault storms: checksummed halo retransmission, per-shard kernel recovery,
// device-loss failover, and the fault-free dispatcher identity.
//
// The central contract: *link* faults never change the output at all.  A
// dropped or corrupted message is retransmitted from the sender's pristine
// pack buffer, so the bytes that finally unpack are the bytes that would
// have arrived in a clean run — the gathered field must equal the fault-free
// field bit for bit, not just within tolerance.  Kernel-level faults that
// exhaust the retry budget fall back down the strategy ladder, which changes
// the summation order on the affected shard only: every other shard must
// still be bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/dslash_ref.hpp"
#include "multidev/runner.hpp"

namespace milc::multidev {
namespace {

using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

constexpr int kL = 12;

const RunRequest kReq{.strategy = Strategy::LP3_1,
                      .order = IndexOrder::kMajor,
                      .local_size = 768,
                      .variant = Variant::SYCL};

/// The fault-free functional output of the same kernel configuration (the
/// single-device result — the exactness oracle for every grid).
ColorField clean_output(std::uint64_t seed) {
  DslashProblem problem(kL, seed);
  const DslashRunner single;
  single.run_functional(problem, kReq.strategy, kReq.order, kReq.local_size);
  return problem.c();
}

MultiDevResult run_hardened(DslashProblem& problem, const PartitionGrid& grid) {
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = grid;
  mreq.req = kReq;
  return runner.run(problem, mreq);
}

TEST(MultidevChaos, NoPlanDispatchesToTheUntouchedPath) {
  // With no injector installed, run() must behave exactly like the pre-fault
  // implementation: identical field output, default exchange accounting, no
  // recovery bookkeeping.  (Profiled timings are not compared: simulated
  // stats depend on the addresses of per-run scratch allocations.)
  DslashProblem a(kL, /*seed=*/5);
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid::along(3, 2);
  mreq.req = kReq;
  const MultiDevResult r1 = runner.run(a, mreq);
  const ColorField first = a.c();
  (void)runner.run(a, mreq);

  EXPECT_EQ(max_abs_diff(first, a.c()), 0.0);
  EXPECT_TRUE(r1.recovered);
  EXPECT_EQ(r1.final_grid.label(), mreq.grid.label());
  EXPECT_EQ(r1.recovery_us, 0.0);
  EXPECT_TRUE(r1.exchange.events.empty());
  EXPECT_TRUE(r1.failovers.empty());
  EXPECT_TRUE(r1.shard_recoveries.empty());
  EXPECT_TRUE(r1.faults.empty());
}

TEST(MultidevChaos, EmptyPlanHardenedRunIsExactAndClean) {
  // An installed plan with every probability zero exercises the hardened
  // machinery (checksums, rounds, reports) with nothing firing: the output
  // must still be bit-for-bit and the exchange report clean.
  const ColorField expected = clean_output(/*seed=*/5);
  DslashProblem problem(kL, /*seed=*/5);
  FaultPlan plan;
  plan.seed = 1;
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  EXPECT_TRUE(res.recovered);
  EXPECT_TRUE(res.exchange.succeeded);
  EXPECT_TRUE(res.exchange.clean()) << res.exchange.summary();
  EXPECT_EQ(res.exchange.messages, 4);  // 2 shards x 2 inbound slabs
  EXPECT_EQ(res.exchange.rounds, 1);
  EXPECT_TRUE(res.faults.empty());
  EXPECT_EQ(res.recovery_us, 0.0);
}

TEST(MultidevChaos, ScheduledDropIsRetransmittedBitForBit) {
  const ColorField expected = clean_output(/*seed=*/7);
  DslashProblem problem(kL, /*seed=*/7);
  FaultPlan plan;
  plan.seed = 3;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::msg_drop, 0, 1, "halo-exchange r0->r1"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "retransmission must restore the exact wire bytes";
  EXPECT_TRUE(res.recovered);
  EXPECT_TRUE(res.exchange.succeeded);
  EXPECT_EQ(res.exchange.drops, 1);
  EXPECT_EQ(res.exchange.retransmissions, 1);
  EXPECT_EQ(res.exchange.rounds, 2);
  EXPECT_GT(res.exchange.backoff_us, 0.0);
  EXPECT_GT(res.recovery_us, 0.0);
  ASSERT_EQ(res.faults.size(), 1u);
  EXPECT_EQ(res.faults[0].kind, FaultKind::msg_drop);
  EXPECT_EQ(res.faults[0].site, "halo-exchange r0->r1");

  // The event trail shows the drop in round 1 and the delivery in round 2.
  bool dropped_r1 = false, delivered_r2 = false;
  for (const ExchangeEvent& ev : res.exchange.events) {
    if (ev.site == "halo-exchange r0->r1" && ev.round == 1 && ev.dropped) dropped_r1 = true;
    if (ev.site == "halo-exchange r0->r1" && ev.round == 2 && ev.delivered)
      delivered_r2 = true;
  }
  EXPECT_TRUE(dropped_r1);
  EXPECT_TRUE(delivered_r2);
}

TEST(MultidevChaos, CorruptedPayloadIsCaughtByChecksumAndHealed) {
  const ColorField expected = clean_output(/*seed=*/7);
  DslashProblem problem(kL, /*seed=*/7);
  FaultPlan plan;
  plan.seed = 3;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::msg_corrupt, 0, 1, "halo-exchange r1->r0"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "a corrupted delivery must never be unpacked";
  EXPECT_TRUE(res.exchange.succeeded);
  EXPECT_EQ(res.exchange.corruptions, 1);
  EXPECT_EQ(res.exchange.checksum_failures, 1);
  EXPECT_EQ(res.exchange.retransmissions, 1);
  bool flagged = false;
  for (const ExchangeEvent& ev : res.exchange.events) {
    if (ev.corrupted && !ev.checksum_ok && !ev.delivered) flagged = true;
  }
  EXPECT_TRUE(flagged) << "the corrupt round-1 delivery must be in the event trail";
}

TEST(MultidevChaos, DelayedMessageIsExactButSlower) {
  const ColorField expected = clean_output(/*seed=*/7);
  DslashProblem problem(kL, /*seed=*/7);
  FaultPlan plan;
  plan.seed = 3;
  plan.delay_latency_us = 500.0;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::msg_delay, 0, 1, "halo-exchange r0->r1"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  EXPECT_TRUE(res.exchange.succeeded);
  EXPECT_EQ(res.exchange.delays, 1);
  EXPECT_EQ(res.exchange.retransmissions, 0) << "a delayed message still delivers";
  EXPECT_EQ(res.exchange.rounds, 1);
}

class MultidevChaosStorm : public ::testing::TestWithParam<Coords> {};

TEST_P(MultidevChaosStorm, LinkStormRecoversExactOutputOnEveryGrid) {
  const PartitionGrid grid{.devices = GetParam()};
  const ColorField expected = clean_output(/*seed=*/11);
  ColorField ref(LatticeGeom(kL), Parity::Even);
  {
    DslashProblem problem(kL, /*seed=*/11);
    dslash_reference(problem.view(), problem.neighbors(), problem.b(), ref);
  }

  DslashProblem problem(kL, /*seed=*/11);
  FaultPlan plan;
  plan.seed = 2024;
  plan.p_msg_drop = 0.3;
  plan.p_msg_corrupt = 0.3;
  plan.p_msg_delay = 0.3;
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, grid);

  EXPECT_TRUE(res.recovered);
  EXPECT_TRUE(res.exchange.succeeded) << res.exchange.summary();
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "link faults must be invisible in the output, grid " << grid.label();
  EXPECT_LT(max_abs_diff(ref, problem.c()), 1e-9);

  // Every fired fault is enumerated, and the report agrees with the log.
  int drops = 0, corruptions = 0, delays = 0;
  for (const faultsim::FaultEvent& ev : res.faults) {
    drops += ev.kind == FaultKind::msg_drop ? 1 : 0;
    corruptions += ev.kind == FaultKind::msg_corrupt ? 1 : 0;
    delays += ev.kind == FaultKind::msg_delay ? 1 : 0;
  }
  EXPECT_GT(drops + corruptions + delays, 0) << "the storm must actually fire";
  EXPECT_EQ(res.exchange.drops, drops);
  EXPECT_EQ(res.exchange.corruptions, corruptions);
  EXPECT_EQ(res.exchange.delays, delays);
  EXPECT_EQ(res.exchange.checksum_failures, corruptions);
  // Every failed delivery is retransmitted in the next round — except the
  // final round of an exchange that exhausts its budget and fails over, whose
  // losses are healed by the retried attempt rather than a further round.
  EXPECT_GE(res.exchange.retransmissions, 1);
  EXPECT_LE(res.exchange.retransmissions, drops + corruptions);
}

INSTANTIATE_TEST_SUITE_P(Grids, MultidevChaosStorm,
                         ::testing::Values(Coords{1, 1, 1, 2},  // 2 devices
                                           Coords{1, 1, 2, 2},  // 4 devices
                                           Coords{1, 2, 2, 2}   // 8 devices
                                           ),
                         [](const ::testing::TestParamInfo<Coords>& param) {
                           const Coords& d = param.param;
                           return std::to_string(d[0]) + "x" + std::to_string(d[1]) + "x" +
                                  std::to_string(d[2]) + "x" + std::to_string(d[3]);
                         });

TEST(MultidevChaos, StormIsDeterministicFromItsSeed) {
  auto run_once = [] {
    DslashProblem problem(kL, /*seed=*/11);
    FaultPlan plan;
    plan.seed = 99;
    plan.p_msg_drop = 0.2;
    plan.p_msg_corrupt = 0.2;
    ScopedFaultInjection fi(plan);
    MultiDevResult res = run_hardened(problem, PartitionGrid{.devices = {1, 1, 2, 2}});
    return std::make_pair(std::move(res), problem.c());
  };
  const auto [r1, c1] = run_once();
  const auto [r2, c2] = run_once();
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
  ASSERT_EQ(r1.faults.size(), r2.faults.size());
  for (std::size_t i = 0; i < r1.faults.size(); ++i) {
    EXPECT_EQ(r1.faults[i].kind, r2.faults[i].kind);
    EXPECT_EQ(r1.faults[i].site, r2.faults[i].site);
    EXPECT_EQ(r1.faults[i].occurrence, r2.faults[i].occurrence);
  }
  ASSERT_EQ(r1.exchange.events.size(), r2.exchange.events.size());
  EXPECT_EQ(r1.exchange.retransmissions, r2.exchange.retransmissions);
  EXPECT_EQ(r1.recovery_us, r2.recovery_us);
}

TEST(MultidevChaos, StickyShardFaultRetriesWithoutTouchingOtherShards) {
  // A transient fault pinned to rank 1's boundary kernel (at 12^4 with
  // local extent 6 every site is within halo depth of a face, so boundary
  // ranges always launch): the retry clears it within the budget at the
  // *same* strategy, so the whole field — every shard — is still
  // bit-for-bit the fault-free output.
  const ColorField expected = clean_output(/*seed=*/13);
  DslashProblem problem(kL, /*seed=*/13);
  FaultPlan plan;
  plan.seed = 4;
  plan.schedule.push_back(ScheduledFault{FaultKind::sticky_fault, 0, 2, "dslash-boundary r1"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid{.devices = {1, 1, 2, 2}});

  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  ASSERT_GE(res.shard_recoveries.size(), 2u);
  for (const ShardRecovery& sr : res.shard_recoveries) {
    EXPECT_EQ(sr.rank, 1) << "recovery actions must stay on the faulted shard";
    EXPECT_EQ(sr.action, "retry");
    EXPECT_EQ(sr.strategy, Strategy::LP3_1);
  }
  EXPECT_GT(res.recovery_us, 0.0);
}

TEST(MultidevChaos, ExhaustedRetriesWalkTheStrategyLadderShardLocally) {
  // Rank 1's boundary kernel faults for 8 consecutive launches: 4 attempts
  // at 3LP-1, 4 at 2LP, then 1LP succeeds.  The fallback changes that one
  // range's summation order, so rank 1 may differ at roundoff — but every
  // *other* shard's sites must remain bit-identical to the fault-free run.
  const PartitionGrid grid{.devices = {1, 1, 2, 2}};
  const ColorField expected = clean_output(/*seed=*/13);
  DslashProblem problem(kL, /*seed=*/13);
  FaultPlan plan;
  plan.seed = 4;
  plan.schedule.push_back(ScheduledFault{FaultKind::sticky_fault, 0, 8, "dslash-boundary r1"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, grid);

  EXPECT_TRUE(res.recovered);
  std::vector<Strategy> abandoned;  // the rung a "fallback" record walks away from
  for (const ShardRecovery& sr : res.shard_recoveries) {
    EXPECT_EQ(sr.rank, 1);
    if (sr.action == "fallback") abandoned.push_back(sr.strategy);
  }
  ASSERT_EQ(abandoned.size(), 2u) << "8 scheduled faults must exhaust 3LP-1 and 2LP";
  EXPECT_EQ(abandoned[0], Strategy::LP3_1);
  EXPECT_EQ(abandoned[1], Strategy::LP2);

  // Shard-locality of the divergence: map every site back to its owner.
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  double rank1_diff = 0.0;
  for (const Shard& sh : part.shards()) {
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      const std::int64_t site = sh.target_eo[static_cast<std::size_t>(t)];
      double d = 0.0;
      for (int c = 0; c < kColors; ++c) {
        d = std::max(d, std::abs(expected[site].c[c].re - problem.c()[site].c[c].re));
        d = std::max(d, std::abs(expected[site].c[c].im - problem.c()[site].c[c].im));
      }
      if (sh.rank == 1) {
        rank1_diff = std::max(rank1_diff, d);
      } else {
        EXPECT_EQ(d, 0.0) << "rank " << sh.rank << " site " << site
                          << " must not see rank 1's fallback";
      }
    }
  }
  EXPECT_LT(rank1_diff, 1e-9) << "the 1LP fallback output is still correct";
}

TEST(MultidevChaos, DeviceLossFailsOverToASmallerGridWithExactOutput) {
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r1 @ 1x1x1x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_TRUE(res.recovered);
  ASSERT_EQ(res.failovers.size(), 1u);
  EXPECT_EQ(res.failovers[0].from.label(), "1x1x1x2");
  EXPECT_EQ(res.failovers[0].to.label(), "1x1x1x1");
  EXPECT_EQ(res.final_grid.total(), 1);
  EXPECT_EQ(res.devices, 1);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "the replay on the surviving grid is the same arithmetic";
  ASSERT_EQ(res.faults.size(), 1u);
  EXPECT_EQ(res.faults[0].kind, FaultKind::device_loss);
}

TEST(MultidevChaos, CascadingDeviceLossWalksTheFallbackLadder) {
  // Lose a device on the 4-way grid *and* on the first 2-way fallback: the
  // run must step 1x1x2x2 -> 1x1x1x2 -> 1x1x1x1 and still produce the exact
  // field on the lone survivor.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r2 @ 1x1x2x2"});
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r0 @ 1x1x1x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid{.devices = {1, 1, 2, 2}});

  EXPECT_TRUE(res.recovered);
  ASSERT_EQ(res.failovers.size(), 2u);
  EXPECT_EQ(res.failovers[0].from.label(), "1x1x2x2");
  EXPECT_EQ(res.failovers[0].to.label(), "1x1x1x2");
  EXPECT_EQ(res.failovers[1].from.label(), "1x1x1x2");
  EXPECT_EQ(res.failovers[1].to.label(), "1x1x1x1");
  EXPECT_EQ(res.final_grid.total(), 1);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
}

TEST(MultidevChaos, UnbrokenDropStormExhaustsRoundsAndReportsFailure) {
  // Every delivery on one link drops and the budget is tiny: the exchange
  // must fail closed — watchdog/rounds accounted, recovered == false, never
  // a partial unpack presented as success.
  DslashProblem problem(kL, /*seed=*/19);
  FaultPlan plan;
  plan.seed = 8;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::msg_drop, 0, 1000, "halo-exchange r0->r1"});
  ScopedFaultInjection fi(plan);

  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid::along(3, 2);
  mreq.req = kReq;
  mreq.xcfg.max_rounds = 2;
  const MultiDevResult res = runner.run(problem, mreq);

  // The exchange failure triggers failover; the 1x1x1x1 grid has no links,
  // so the run still completes on the lone device (and its trivial exchange
  // is what leaves `succeeded` true in the cumulative report).
  EXPECT_TRUE(res.recovered);
  ASSERT_GE(res.failovers.size(), 1u);
  EXPECT_NE(res.failovers[0].reason.find("exchange"), std::string::npos)
      << res.failovers[0].reason;
  EXPECT_GE(res.exchange.drops, 2);
  EXPECT_GE(res.exchange.retransmissions, 1);
  const ColorField expected = clean_output(/*seed=*/19);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
}

// --- fabric-tier chaos -------------------------------------------------------

MultiDevResult run_hardened_topo(DslashProblem& problem, const PartitionGrid& grid,
                                 const gpusim::NodeTopology& topo) {
  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = grid;
  mreq.req = kReq;
  mreq.topo = topo;
  return runner.run(problem, mreq);
}

TEST(MultidevChaos, FabricStormRecoversExactOutputAcrossNodes) {
  // The same storm as the single-island case, but over a 2x2 cluster: the
  // probabilistic draws now also hit the aggregated fabric wires, whose unit
  // of loss is a whole coalesced message.  Retransmission must still restore
  // the exact bytes.
  const ColorField expected = clean_output(/*seed=*/11);
  DslashProblem problem(kL, /*seed=*/11);
  FaultPlan plan;
  plan.seed = 2024;
  plan.p_msg_drop = 0.25;
  plan.p_msg_corrupt = 0.25;
  plan.p_msg_delay = 0.25;
  ScopedFaultInjection fi(plan);
  const MultiDevResult res =
      run_hardened_topo(problem, PartitionGrid{.devices = {1, 1, 2, 2}}, gpusim::cluster(2, 2));

  EXPECT_TRUE(res.recovered);
  EXPECT_TRUE(res.exchange.succeeded) << res.exchange.summary();
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "fabric faults must be invisible in the output";
  EXPECT_EQ(res.nodes, 2);
  EXPECT_GT(res.fabric_messages, 0);

  bool fabric_fault = false;
  for (const faultsim::FaultEvent& ev : res.faults) {
    fabric_fault |= ev.site.find("fabric-exchange") != std::string::npos;
  }
  EXPECT_TRUE(fabric_fault) << "with this seed the storm must hit a fabric wire";
}

TEST(MultidevChaos, NodeLossFailsOverBelowTheSurvivorCount) {
  // Node n1 dies: both of its devices vanish at once, so one fallback_grid
  // step (4 -> 2) is forced in a single failover, and the survivors — now a
  // lone NVLink island — replay the exact field.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 0, 1, "node n1 @ 1x1x2x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res =
      run_hardened_topo(problem, PartitionGrid{.devices = {1, 1, 2, 2}}, gpusim::cluster(2, 2));

  EXPECT_TRUE(res.recovered);
  ASSERT_EQ(res.failovers.size(), 1u);
  EXPECT_EQ(res.failovers[0].from.label(), "1x1x2x2");
  EXPECT_LE(res.failovers[0].to.total(), 2) << "the new grid must fit the 2 survivors";
  EXPECT_NE(res.failovers[0].reason.find("node n1"), std::string::npos)
      << res.failovers[0].reason;
  EXPECT_EQ(res.nodes, 1) << "the post-failover remnant is a single island";
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  ASSERT_EQ(res.faults.size(), 1u);
  EXPECT_EQ(res.faults[0].kind, FaultKind::node_loss);
}

TEST(MultidevChaos, NodeLossStormStillConvergesBitForBit) {
  // A node loss in the middle of a link storm: the failover replays on the
  // survivors under the same storm, and the final field must still be the
  // fault-free output bit for bit.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  FaultPlan plan;
  plan.seed = 2024;
  plan.p_msg_drop = 0.2;
  plan.p_msg_corrupt = 0.2;
  plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 0, 1, "node n1 @ 1x1x2x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res =
      run_hardened_topo(problem, PartitionGrid{.devices = {1, 1, 2, 2}}, gpusim::cluster(2, 2));

  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  ASSERT_GE(res.failovers.size(), 1u);
  bool node_lost = false;
  for (const faultsim::FaultEvent& ev : res.faults) {
    node_lost |= ev.kind == FaultKind::node_loss;
  }
  EXPECT_TRUE(node_lost);
}

// --- elastic recovery: hot spares and live rejoin ---------------------------

TEST(MultidevChaos, HotSpareReReplicationKeepsTheGridAndExactOutput) {
  // With a hot spare declared, a lost device's shard is re-replicated onto
  // the spare over the priced interconnect instead of shrinking the grid —
  // the run finishes at full capacity with the exact field.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  gpusim::NodeTopology topo;
  topo.spares.devices_per_node = 1;
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r1 @ 1x1x1x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened_topo(problem, PartitionGrid::along(3, 2), topo);

  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(res.spares_consumed, 1);
  EXPECT_EQ(res.final_grid.label(), "1x1x1x2") << "re-replication must not shrink";
  EXPECT_EQ(res.devices, 2);
  EXPECT_GT(res.rereplicated_bytes, 0);
  EXPECT_GT(res.rereplication_us, 0.0);
  EXPECT_GT(res.recovery_us, 0.0);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
      << "the adopted replica must carry the exact shard state";
  ASSERT_GE(res.failovers.size(), 1u);
  EXPECT_NE(res.failovers[0].reason.find("re-replicated onto hot spare"), std::string::npos)
      << res.failovers[0].reason;
}

TEST(MultidevChaos, KillThenHealRejoinsTheAbandonedGridExactly) {
  // No spares: the loss shrinks 1x1x1x2 -> 1x1x1x1 and parks the abandoned
  // grid as a rejoin target.  A scheduled heal of the lost device then
  // re-admits it — shard state re-replicated, grid restored — and the run
  // finishes at full capacity with the exact field.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r1 @ 1x1x1x2"});
  plan.schedule.push_back(ScheduledFault{FaultKind::heal, 0, 1, "heal/device r1"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));

  EXPECT_TRUE(res.recovered);
  EXPECT_GE(res.rejoins, 1);
  EXPECT_GE(res.capacity_restored, 1);
  EXPECT_EQ(res.final_grid.label(), "1x1x1x2") << "the heal must restore full capacity";
  EXPECT_GT(res.rereplicated_bytes, 0);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  bool shrank = false, rejoined = false;
  for (const FailoverEvent& f : res.failovers) {
    shrank = shrank || f.to.total() < f.from.total();
    rejoined = rejoined || f.reason.find("healed; rejoined") != std::string::npos;
  }
  EXPECT_TRUE(shrank) << "the loss must first shrink (no spares declared)";
  EXPECT_TRUE(rejoined);
  bool healed = false;
  for (const faultsim::FaultEvent& ev : res.faults) {
    healed = healed || ev.kind == FaultKind::heal;
  }
  EXPECT_TRUE(healed) << "the heal must be enumerated alongside the faults";
}

TEST(MultidevChaos, StandbyNodeAdoptsALostNodeAtFullCapacity) {
  // Node n1 of a 2x2 cluster dies with a standby node declared: the whole
  // node group is re-replicated across the fabric instead of shrinking the
  // grid below the survivor count.
  const ColorField expected = clean_output(/*seed=*/17);
  DslashProblem problem(kL, /*seed=*/17);
  gpusim::NodeTopology topo = gpusim::cluster(2, 2);
  topo.spares.nodes = 1;
  FaultPlan plan;
  plan.seed = 6;
  plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 0, 1, "node n1 @ 1x1x2x2"});
  ScopedFaultInjection fi(plan);
  const MultiDevResult res =
      run_hardened_topo(problem, PartitionGrid{.devices = {1, 1, 2, 2}}, topo);

  EXPECT_TRUE(res.recovered);
  EXPECT_EQ(res.spares_consumed, 1);
  EXPECT_EQ(res.final_grid.label(), "1x1x2x2");
  EXPECT_EQ(res.devices, 4);
  EXPECT_GT(res.rereplicated_bytes, 0);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
  ASSERT_GE(res.failovers.size(), 1u);
  EXPECT_NE(res.failovers[0].reason.find("re-replicated onto standby node"), std::string::npos)
      << res.failovers[0].reason;
}

TEST(MultidevChaos, ElasticRecoveryReplaysBitForBitFromItsSeed) {
  // The full kill-then-heal cycle is part of the deterministic replay
  // contract: same seed, same rejoins, same re-replication accounting, same
  // output bits.
  auto run_once = [] {
    DslashProblem problem(kL, /*seed=*/17);
    FaultPlan plan;
    plan.seed = 6;
    plan.schedule.push_back(
        ScheduledFault{FaultKind::device_loss, 0, 1, "device r1 @ 1x1x1x2"});
    plan.schedule.push_back(ScheduledFault{FaultKind::heal, 0, 1, "heal/device r1"});
    ScopedFaultInjection fi(plan);
    MultiDevResult res = run_hardened(problem, PartitionGrid::along(3, 2));
    return std::make_pair(std::move(res), problem.c());
  };
  const auto [r1, c1] = run_once();
  const auto [r2, c2] = run_once();
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
  EXPECT_EQ(r1.rejoins, r2.rejoins);
  EXPECT_EQ(r1.capacity_restored, r2.capacity_restored);
  EXPECT_EQ(r1.rereplicated_bytes, r2.rereplicated_bytes);
  EXPECT_EQ(r1.rereplication_us, r2.rereplication_us);
  EXPECT_EQ(r1.recovery_us, r2.recovery_us);
  ASSERT_EQ(r1.faults.size(), r2.faults.size());
}

TEST(MultidevChaos, FallbackGridHalvesTheLowestSplitDimension) {
  EXPECT_EQ(fallback_grid(PartitionGrid{.devices = {2, 2, 2, 1}}).label(), "1x2x2x1");
  EXPECT_EQ(fallback_grid(PartitionGrid{.devices = {1, 1, 1, 4}}).label(), "1x1x1x2");
  EXPECT_EQ(fallback_grid(PartitionGrid{.devices = {1, 3, 1, 1}}).label(), "1x1x1x1");
  EXPECT_EQ(fallback_grid(PartitionGrid{}).label(), "1x1x1x1");
}

}  // namespace
}  // namespace milc::multidev
