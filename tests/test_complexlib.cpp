// Unit and property tests for the two complex-number libraries: the paper's
// hand-rolled double_complex (milc::dcomplex) and the SyclCPLX-style
// syclcplx::complex<double>.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "complexlib/complex_traits.hpp"
#include "complexlib/dcomplex.hpp"
#include "complexlib/syclcplx.hpp"
#include "su3/random_su3.hpp"

namespace {

using milc::dcomplex;
using Z = syclcplx::complex<double>;

constexpr double kEps = 1e-13;

void expect_near(const dcomplex& a, const dcomplex& b, double tol = kEps) {
  EXPECT_NEAR(a.re, b.re, tol);
  EXPECT_NEAR(a.im, b.im, tol);
}
void expect_near(const Z& a, const Z& b, double tol = kEps) {
  EXPECT_NEAR(a.real(), b.real(), tol);
  EXPECT_NEAR(a.imag(), b.imag(), tol);
}

// ---------------------------------------------------------------- dcomplex --

TEST(DComplex, BasicArithmetic) {
  const dcomplex a{1.0, 2.0}, b{-3.0, 0.5};
  expect_near(cadd(a, b), {-2.0, 2.5});
  expect_near(csub(a, b), {4.0, 1.5});
  expect_near(cmul(a, b), {1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0});
  expect_near(a + b, cadd(a, b));
  expect_near(a - b, csub(a, b));
  expect_near(a * b, cmul(a, b));
}

TEST(DComplex, ConjAndNorm) {
  const dcomplex a{3.0, -4.0};
  expect_near(cconj(a), {3.0, 4.0});
  EXPECT_DOUBLE_EQ(cnorm2(a), 25.0);
  EXPECT_DOUBLE_EQ(cabs(a), 5.0);
  expect_near(cmul(a, cconj(a)), {25.0, 0.0});
}

TEST(DComplex, MulConjMatchesConjThenMul) {
  const dcomplex a{1.5, -0.25}, b{0.75, 2.0};
  expect_near(cmul_conj(a, b), cmul(cconj(a), b));
}

TEST(DComplex, MacAccumulates) {
  dcomplex acc{1.0, 1.0};
  const dcomplex a{2.0, -1.0}, b{0.5, 3.0};
  cmac(acc, a, b);
  expect_near(acc, cadd({1.0, 1.0}, cmul(a, b)));
  dcomplex acc2{0.0, 0.0};
  cmac_conj(acc2, a, b);
  expect_near(acc2, cmul(cconj(a), b));
}

TEST(DComplex, DivisionInverse) {
  const dcomplex a{1.0, 2.0}, b{-3.0, 0.5};
  expect_near(cmul(cdiv(a, b), b), a, 1e-12);
}

TEST(DComplex, DivisionRobustToLargeMagnitudes) {
  // Naive (ac+bd)/(c^2+d^2) overflows at ~1e154; Smith's algorithm handles
  // magnitudes near the top of the double range.
  const dcomplex a{1e300, 1e300}, b{2e300, 2e300};
  const dcomplex q = cdiv(a, b);
  expect_near(q, {0.5, 0.0}, 1e-12);
}

TEST(DComplex, ScaleAndNegate) {
  const dcomplex a{2.0, -6.0};
  expect_near(cscale(0.5, a), {1.0, -3.0});
  expect_near(-a, {-2.0, 6.0});
  expect_near(2.0 * a, a * 2.0);
}

TEST(DComplex, StreamOutput) {
  std::ostringstream os;
  os << dcomplex{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5-2i)");
}

TEST(DComplex, PacksToTwoDoubles) {
  static_assert(sizeof(dcomplex) == 16);
  static_assert(std::is_trivially_copyable_v<dcomplex>);
  SUCCEED();
}

// ---------------------------------------------------------------- syclcplx --

TEST(SyclCplx, ConstructionAndAccessors) {
  Z z{3.0, -4.0};
  EXPECT_DOUBLE_EQ(z.real(), 3.0);
  EXPECT_DOUBLE_EQ(z.imag(), -4.0);
  z.real(1.0);
  z.imag(2.0);
  expect_near(z, Z{1.0, 2.0});
  Z w;
  w = 5.0;
  expect_near(w, Z{5.0, 0.0});
}

TEST(SyclCplx, MixedScalarArithmetic) {
  const Z z{1.0, 2.0};
  expect_near(z + 1.0, Z{2.0, 2.0});
  expect_near(1.0 + z, Z{2.0, 2.0});
  expect_near(z - 1.0, Z{0.0, 2.0});
  expect_near(1.0 - z, Z{0.0, -2.0});
  expect_near(z * 2.0, Z{2.0, 4.0});
  expect_near(2.0 * z, Z{2.0, 4.0});
  expect_near(z / 2.0, Z{0.5, 1.0});
  expect_near(2.0 / Z{0.0, 2.0}, Z{0.0, -1.0});
}

TEST(SyclCplx, CompoundAssignment) {
  Z z{1.0, 1.0};
  z += Z{1.0, -1.0};
  expect_near(z, Z{2.0, 0.0});
  z *= Z{0.0, 1.0};
  expect_near(z, Z{0.0, 2.0});
  z -= 1.0;
  expect_near(z, Z{-1.0, 2.0});
  z /= Z{-1.0, 2.0};
  expect_near(z, Z{1.0, 0.0}, 1e-12);
}

TEST(SyclCplx, AbsArgNormConj) {
  const Z z{3.0, 4.0};
  EXPECT_DOUBLE_EQ(syclcplx::abs(z), 5.0);
  EXPECT_DOUBLE_EQ(syclcplx::norm(z), 25.0);
  expect_near(syclcplx::conj(z), Z{3.0, -4.0});
  EXPECT_NEAR(syclcplx::arg(Z{0.0, 1.0}), M_PI / 2, kEps);
  EXPECT_NEAR(syclcplx::arg(Z{-1.0, 0.0}), M_PI, kEps);
}

TEST(SyclCplx, PolarRoundTrip) {
  const Z z = syclcplx::polar(2.0, 0.7);
  EXPECT_NEAR(syclcplx::abs(z), 2.0, kEps);
  EXPECT_NEAR(syclcplx::arg(z), 0.7, kEps);
}

TEST(SyclCplx, ExpLogRoundTrip) {
  const Z z{0.3, -1.2};
  expect_near(syclcplx::log(syclcplx::exp(z)), z, 1e-12);
  expect_near(syclcplx::exp(Z{0.0, M_PI}), Z{-1.0, 0.0}, 1e-12);
}

TEST(SyclCplx, SqrtSquares) {
  const Z z{-5.0, 12.0};
  const Z r = syclcplx::sqrt(z);
  expect_near(r * r, z, 1e-12);
  EXPECT_GE(r.real(), 0.0);  // principal branch
  expect_near(syclcplx::sqrt(Z{-1.0, 0.0}), Z{0.0, 1.0}, 1e-12);
}

TEST(SyclCplx, PowIdentities) {
  const Z z{1.3, -0.4};
  expect_near(syclcplx::pow(z, 2.0), z * z, 1e-12);
  expect_near(syclcplx::pow(z, Z{0.0, 0.0}), Z{1.0, 0.0});
  expect_near(syclcplx::pow(2.0, Z{3.0, 0.0}), Z{8.0, 0.0}, 1e-12);
}

TEST(SyclCplx, TrigPythagorean) {
  const Z z{0.5, 0.25};
  const Z s = syclcplx::sin(z), c = syclcplx::cos(z);
  expect_near(s * s + c * c, Z{1.0, 0.0}, 1e-12);
  expect_near(syclcplx::tan(z), s / c, 1e-12);
}

TEST(SyclCplx, HyperbolicIdentity) {
  const Z z{0.3, -0.8};
  const Z s = syclcplx::sinh(z), c = syclcplx::cosh(z);
  expect_near(c * c - s * s, Z{1.0, 0.0}, 1e-12);
  expect_near(syclcplx::tanh(z), s / c, 1e-12);
}

TEST(SyclCplx, InverseFunctionsRoundTrip) {
  const Z z{0.4, 0.2};
  expect_near(syclcplx::sin(syclcplx::asin(z)), z, 1e-11);
  expect_near(syclcplx::cos(syclcplx::acos(z)), z, 1e-11);
  expect_near(syclcplx::tan(syclcplx::atan(z)), z, 1e-11);
  expect_near(syclcplx::sinh(syclcplx::asinh(z)), z, 1e-11);
  expect_near(syclcplx::tanh(syclcplx::atanh(z)), z, 1e-11);
}

TEST(SyclCplx, ProjHandlesInfinities) {
  const Z inf{std::numeric_limits<double>::infinity(), -1.0};
  const Z p = syclcplx::proj(inf);
  EXPECT_TRUE(std::isinf(p.real()));
  EXPECT_DOUBLE_EQ(p.imag(), -0.0);
  expect_near(syclcplx::proj(Z{1.0, 2.0}), Z{1.0, 2.0});
}

TEST(SyclCplx, Literals) {
  using namespace syclcplx::literals;
  const Z z = 2.0 + 3.0_i;
  expect_near(z, Z{2.0, 3.0});
  const Z w = 1.0 - 1_i;
  expect_near(w, Z{1.0, -1.0});
}

TEST(SyclCplx, Comparisons) {
  EXPECT_TRUE((Z{1.0, 0.0} == 1.0));
  EXPECT_TRUE((1.0 == Z{1.0, 0.0}));
  EXPECT_TRUE((Z{1.0, 2.0} != Z{1.0, 3.0}));
}

// -------------------------------------------------------------- the traits --

template <typename C>
class ComplexTraitsTest : public ::testing::Test {};

using BothComplexTypes = ::testing::Types<dcomplex, Z>;
TYPED_TEST_SUITE(ComplexTraitsTest, BothComplexTypes);

TYPED_TEST(ComplexTraitsTest, MakeRealImag) {
  using T = milc::complex_traits<TypeParam>;
  const TypeParam z = T::make(1.25, -2.5);
  EXPECT_DOUBLE_EQ(T::real(z), 1.25);
  EXPECT_DOUBLE_EQ(T::imag(z), -2.5);
}

TYPED_TEST(ComplexTraitsTest, MacMatchesManualExpansion) {
  using T = milc::complex_traits<TypeParam>;
  TypeParam acc = T::make(0.5, 0.5);
  const TypeParam a = T::make(2.0, -1.0);
  const TypeParam b = T::make(-0.5, 3.0);
  T::mac(acc, a, b);
  // acc = 0.5+0.5i + (2-i)(-0.5+3i) = 0.5+0.5i + (-1+6i +0.5i +3) = 2.5 + 7i
  EXPECT_NEAR(T::real(acc), 2.5, kEps);
  EXPECT_NEAR(T::imag(acc), 7.0, kEps);
}

TYPED_TEST(ComplexTraitsTest, ConjMacMatchesConjugatedMac) {
  using T = milc::complex_traits<TypeParam>;
  TypeParam acc1 = T::make(0.0, 0.0);
  TypeParam acc2 = T::make(0.0, 0.0);
  const TypeParam a = T::make(1.5, 2.5);
  const TypeParam b = T::make(-2.0, 0.75);
  T::conj_mac(acc1, a, b);
  T::mac(acc2, T::conj(a), b);
  EXPECT_NEAR(T::real(acc1), T::real(acc2), kEps);
  EXPECT_NEAR(T::imag(acc1), T::imag(acc2), kEps);
}

}  // namespace

// ------------------------------------------------ property-test sweeps -----

namespace property_sweep {

using milc::dcomplex;
using Z = syclcplx::complex<double>;

struct RandomPairs : public ::testing::TestWithParam<int> {
  milc::Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 1};
  dcomplex rand_d() { return {rng.next_signed() * 3.0, rng.next_signed() * 3.0}; }
};

TEST_P(RandomPairs, FieldAxiomsDComplex) {
  const dcomplex a = rand_d(), b = rand_d(), c = rand_d();
  // commutativity
  expect_near(a + b, b + a);
  expect_near(a * b, b * a);
  // associativity (floating point: tolerant)
  expect_near((a + b) + c, a + (b + c), 1e-12);
  expect_near((a * b) * c, a * (b * c), 1e-12);
  // distributivity
  expect_near(a * (b + c), a * b + a * c, 1e-12);
  // additive/multiplicative identities
  expect_near(a + dcomplex{0.0, 0.0}, a);
  expect_near(a * dcomplex{1.0, 0.0}, a);
}

TEST_P(RandomPairs, ConjIsAntiAutomorphismAndNormMultiplicative) {
  const dcomplex a = rand_d(), b = rand_d();
  expect_near(milc::cconj(a * b), milc::cconj(a) * milc::cconj(b), 1e-12);
  expect_near(milc::cconj(a + b), milc::cconj(a) + milc::cconj(b), 1e-12);
  EXPECT_NEAR(milc::cabs(a * b), milc::cabs(a) * milc::cabs(b), 1e-11);
  // |a|^2 == a * conj(a)
  expect_near(a * milc::cconj(a), {milc::cnorm2(a), 0.0}, 1e-12);
}

TEST_P(RandomPairs, DivisionInvertsMultiplication) {
  const dcomplex a = rand_d();
  dcomplex b = rand_d();
  if (milc::cnorm2(b) < 1e-6) b = {1.0, 1.0};
  expect_near(milc::cdiv(a * b, b), a, 1e-10);
}

TEST_P(RandomPairs, TheTwoLibrariesAgree) {
  const dcomplex a = rand_d(), b = rand_d();
  const Z za{a.re, a.im}, zb{b.re, b.im};
  const dcomplex dm = a * b;
  const Z zm = za * zb;
  EXPECT_NEAR(dm.re, zm.real(), 1e-13);
  EXPECT_NEAR(dm.im, zm.imag(), 1e-13);
  if (milc::cnorm2(b) > 1e-6) {
    const dcomplex dd = milc::cdiv(a, b);
    const Z zd = za / zb;
    EXPECT_NEAR(dd.re, zd.real(), 1e-12);
    EXPECT_NEAR(dd.im, zd.imag(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPairs, ::testing::Range(1, 26));

}  // namespace property_sweep
