// Robustness tests for the syclomatic-lite translator: composed snippets,
// idempotence, preservation of non-CUDA code, and property checks over
// generated inputs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "su3/random_su3.hpp"
#include "syclomatic/translator.hpp"

namespace syclomatic {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

bool has_cuda_isms(const std::string& s) {
  for (const char* ism : {"threadIdx", "blockIdx", "blockDim.", "gridDim.", "__syncthreads",
                          "__global__", "__shared__", "cudaMalloc(", "cudaMemcpy(",
                          "cudaFree(", "<<<"}) {
    if (contains(s, ism)) return true;
  }
  return false;
}

TEST(TranslatorRobustness, EmptyAndTrivialInputs) {
  EXPECT_FALSE(has_cuda_isms(translate("").source));
  EXPECT_FALSE(has_cuda_isms(translate("int main() { return 0; }").source));
  // Plain C++ passes through untouched (modulo the header prologue).
  const std::string body = "double f(double x) { return 2.0 * x; }";
  EXPECT_TRUE(contains(translate(body).source, body));
}

TEST(TranslatorRobustness, TranslationIsIdempotentOnItsOutput) {
  const std::string once = translate("int g = blockIdx.x * blockDim.x + threadIdx.x;\n"
                                     "__syncthreads();")
                               .source;
  // Strip the prologue the second pass would duplicate.
  const auto body_pos = once.find("int g");
  const std::string body = once.substr(body_pos);
  const std::string twice = translate(body).source;
  EXPECT_TRUE(contains(twice, body.substr(0, 40)));
  EXPECT_FALSE(has_cuda_isms(twice));
}

TEST(TranslatorRobustness, MultipleKernelsInOneFile) {
  const auto t = translate(
      "__global__ void k1(int *a) { a[threadIdx.x] = 1; }\n"
      "__global__ void k2(int *b) { b[blockIdx.x] = 2; }\n"
      "void run() { k1<<<g1, b1>>>(a); k2<<<g2, b2>>>(b); }");
  EXPECT_FALSE(has_cuda_isms(t.source));
  EXPECT_TRUE(contains(t.source, "void k1(int *a,"));
  EXPECT_TRUE(contains(t.source, "void k2(int *b,"));
  // Two migrated launches.
  std::size_t first = t.source.find("cgh.parallel_for");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(t.source.find("cgh.parallel_for", first + 1), std::string::npos);
}

TEST(TranslatorRobustness, MultipleSharedArrays) {
  const auto t = translate("__shared__ double a[64];\n__shared__ float b[N];");
  ASSERT_EQ(t.local_arrays.size(), 2u);
  EXPECT_TRUE(contains(t.local_arrays[0], "sycl::local_accessor<double, 1> a_acc_ct1"));
  EXPECT_TRUE(contains(t.local_arrays[1], "sycl::local_accessor<float, 1> b_acc_ct1"));
  EXPECT_EQ(t.warnings.size(), 2u);
}

TEST(TranslatorRobustness, GeneratedKernelsAlwaysFullyMigrate) {
  // Property test: compose random CUDA-ish kernels from a grammar of
  // fragments; the output must never contain a CUDA-ism and the optimiser
  // must be idempotent.
  milc::Rng rng(2024);
  const std::vector<std::string> index_fragments = {
      "int i = blockIdx.x * blockDim.x + threadIdx.x;",
      "int i = threadIdx.x + blockDim.x * blockIdx.x;",
      "int t = threadIdx.x; int bb = blockIdx.x;",
      "unsigned w = threadIdx.x / 32; unsigned lane = threadIdx.x % 32;",
  };
  const std::vector<std::string> body_fragments = {
      "out[i] = in[i] * 2.0;",
      "__shared__ double tile[128]; tile[threadIdx.x] = in[i]; __syncthreads(); out[i] = "
      "tile[0];",
      "atomicAdd(&out[0], in[i]);",
      "for (int j = 0; j < n; j++) { out[i] += in[j]; }",
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::string src = "__global__ void k(double *out, const double *in, int n) {\n";
    src += index_fragments[rng.next_u64() % index_fragments.size()];
    src += "\n";
    const int nbody = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int b = 0; b < nbody; ++b) {
      src += body_fragments[rng.next_u64() % body_fragments.size()];
      src += "\n";
    }
    src += "}\nvoid run() { k<<<grid, block>>>(out, in, n); }\n";

    const auto t = translate(src);
    EXPECT_FALSE(has_cuda_isms(t.source)) << "trial " << trial << "\n" << t.source;
    const auto o1 = optimize_global_id(t.source);
    const auto o2 = optimize_global_id(o1.source);
    EXPECT_EQ(o2.replacements, 0) << "trial " << trial;
  }
}

TEST(TranslatorRobustness, CommutedIndexExpressionAlsoNormalises) {
  // threadIdx-last and threadIdx-first orderings both produce the canonical
  // derived expression, so the optimiser catches either.
  for (const char* expr : {"int g = blockIdx.x * blockDim.x + threadIdx.x;"}) {
    const auto t = translate(expr);
    const auto o = optimize_global_id(t.source);
    EXPECT_EQ(o.replacements, 1) << expr;
  }
}

TEST(TranslatorRobustness, WarningsAreActionable) {
  const auto t = translate("__shared__ double c[LOCAL_SIZE];");
  ASSERT_FALSE(t.warnings.empty());
  EXPECT_TRUE(contains(t.warnings[0], "c"));
  EXPECT_TRUE(contains(t.warnings[0], "local_accessor"));
}

}  // namespace
}  // namespace syclomatic
