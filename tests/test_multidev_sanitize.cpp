// test_multidev_sanitize.cpp — ksan over the halo pack/unpack kernels.
//
// The exact region declarations of sanitize_halo turn protocol bugs into
// memcheck errors: a pack that reads past its gather list, or an unpack
// that writes outside its own ghost span, is a GlobalOOB.  The third test
// documents *why* the protocol keeps unpack and boundary compute in
// separate launches: fusing them into one launch makes the ghost hand-off
// an unordered cross-group access pair, which ksan reports as a race.
#include <gtest/gtest.h>

#include <vector>

#include "ksan/sanitizer.hpp"
#include "multidev/halo_kernels.hpp"
#include "multidev/runner.hpp"

namespace milc::multidev {
namespace {

TEST(MultidevSanitize, HaloProtocolIsCleanOnEveryMessage) {
  DslashProblem problem(12, /*seed=*/3);
  const MultiDeviceRunner runner;
  const std::vector<ksan::SanitizerReport> reports =
      runner.sanitize_halo(problem, PartitionGrid::along(3, 2));

  // 2 shards x 2 messages each, one pack + one unpack report per message.
  ASSERT_EQ(reports.size(), 8u);
  for (const ksan::SanitizerReport& rep : reports) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_GT(rep.checked_global, 0u) << rep.kernel;
  }
}

TEST(MultidevSanitize, MultiDimSplitIsCleanToo) {
  DslashProblem problem(12, /*seed=*/3);
  const MultiDeviceRunner runner;
  const std::vector<ksan::SanitizerReport> reports =
      runner.sanitize_halo(problem, PartitionGrid{.devices = {1, 1, 2, 2}});
  ASSERT_EQ(reports.size(), 32u);  // 4 shards x 4 messages x {pack, unpack}
  for (const ksan::SanitizerReport& rep : reports) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
  }
}

TEST(MultidevSanitize, OverlongPackCountIsFlaggedAsOOB) {
  // A pack kernel whose count exceeds the real wire: the extra site reads
  // past the gather list and stores past the wire buffer.
  constexpr std::int64_t kSites = 8;
  std::vector<SU3Vector<dcomplex>> src(kSites);
  std::vector<std::int32_t> slots(kSites);
  for (std::int64_t i = 0; i < kSites; ++i) slots[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  std::vector<dcomplex> wire(static_cast<std::size_t>(kSites * kColors));

  HaloPackKernel pack{.src = src.data(),
                      .slots = slots.data(),
                      .wire = wire.data(),
                      .count = kSites + 1};  // the bug

  minisycl::LaunchSpec spec;
  spec.local_size = 32;
  spec.global_size = halo_global_size(pack.count, spec.local_size);
  spec.num_phases = 1;
  spec.traits = HaloPackKernel::traits();

  ksan::SanitizeConfig cfg;
  cfg.regions.push_back(ksan::region_of(src.data(), src.size()));
  cfg.regions.push_back(ksan::region_of(slots.data(), slots.size()));
  cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
  const ksan::SanitizerReport rep = ksan::sanitize_launch(spec, pack, cfg, "pack-overlong");

  EXPECT_FALSE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.count(ksan::Category::GlobalOOB), 0u) << rep.summary();
  EXPECT_EQ(rep.count(ksan::Category::GlobalRace), 0u) << rep.summary();
}

TEST(MultidevSanitize, MisplacedUnpackWriteIsFlaggedAsOOB) {
  // An unpack aimed one slot past its message's ghost span: with the span
  // declared exactly, the stray trailing store is out of bounds.
  constexpr std::int64_t kSites = 8;
  std::vector<dcomplex> wire(static_cast<std::size_t>(kSites * kColors));
  std::vector<SU3Vector<dcomplex>> ghosts(kSites);

  HaloUnpackKernel unpack{.wire = wire.data(),
                          .field = ghosts.data(),
                          .ghost_base = 1,  // the bug: off-by-one scatter base
                          .count = kSites};

  minisycl::LaunchSpec spec;
  spec.local_size = 32;
  spec.global_size = halo_global_size(kSites, spec.local_size);
  spec.num_phases = 1;
  spec.traits = HaloUnpackKernel::traits();

  ksan::SanitizeConfig cfg;
  cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
  cfg.regions.push_back(ksan::region_of(ghosts.data(), ghosts.size()));
  const ksan::SanitizerReport rep =
      ksan::sanitize_launch(spec, unpack, cfg, "unpack-misplaced");

  EXPECT_FALSE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.count(ksan::Category::GlobalOOB), 0u) << rep.summary();
}

TEST(MultidevSanitize, HardenedExchangeWithRetriesIsClean) {
  // The hardened retry flow — pack, receiver-side copy, unpack-from-copy,
  // plus one redelivered (retransmitted) first message per shard whose
  // second unpack runs as its own launch — must sanitize clean: repeated
  // ghost writes are ordered by the launch boundary.
  DslashProblem problem(12, /*seed=*/3);
  const MultiDeviceRunner runner;
  const std::vector<ksan::SanitizerReport> reports =
      runner.sanitize_exchange(problem, PartitionGrid::along(3, 2));

  // 2 shards x 2 messages x {pack, unpack} + 1 retry unpack per shard.
  ASSERT_EQ(reports.size(), 10u);
  int retries = 0;
  for (const ksan::SanitizerReport& rep : reports) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_GT(rep.checked_global, 0u) << rep.kernel;
    retries += rep.kernel.find(" retry") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(retries, 2) << "each shard must re-unpack one retransmission";
}

TEST(MultidevSanitize, HardenedExchangeIsCleanOnAMultiDimSplit) {
  DslashProblem problem(12, /*seed=*/3);
  const MultiDeviceRunner runner;
  const std::vector<ksan::SanitizerReport> reports =
      runner.sanitize_exchange(problem, PartitionGrid{.devices = {1, 1, 2, 2}});
  // 4 shards x 4 messages x {pack, unpack} + 1 retry unpack per shard.
  ASSERT_EQ(reports.size(), 36u);
  for (const ksan::SanitizerReport& rep : reports) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
  }
}

/// The buggy alternative to the retry flow sanitize_exchange blesses: both
/// deliveries of a retransmitted message unpacked inside ONE launch.  The
/// two groups scatter to the same ghost span with no ordering between them.
struct FusedDoubleUnpack {
  static constexpr int kPhases = 1;

  const dcomplex* first = nullptr;   // the original (possibly bad) delivery
  const dcomplex* second = nullptr;  // the retransmission
  dcomplex* ghost = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "fused-double-unpack", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const int lid = lane.local_id();
    if (lane.group_id() == 0) {
      lane.store(&ghost[lid], lane.load(&first[lid]));
    } else {
      lane.store(&ghost[lid], lane.load(&second[lid]));
    }
  }
};

TEST(MultidevSanitize, DoubleUnpackInOneLaunchIsAWriteWriteRace) {
  constexpr int kLocal = 32;
  std::vector<dcomplex> first(kLocal), second(kLocal), ghost(kLocal);
  const FusedDoubleUnpack fused{
      .first = first.data(), .second = second.data(), .ghost = ghost.data()};

  minisycl::LaunchSpec spec;
  spec.local_size = kLocal;
  spec.global_size = 2 * kLocal;  // both deliveries in the same launch
  spec.num_phases = 1;
  spec.traits = FusedDoubleUnpack::traits();

  ksan::SanitizeConfig cfg;
  cfg.regions.push_back(ksan::region_of(first.data(), first.size()));
  cfg.regions.push_back(ksan::region_of(second.data(), second.size()));
  cfg.regions.push_back(ksan::region_of(ghost.data(), ghost.size()));
  const ksan::SanitizerReport rep = ksan::sanitize_launch(spec, fused, cfg);

  // Which delivery lands last is launch-schedule dependent: ksan must flag
  // the unordered write-write pair, the bug the per-delivery launches of
  // the hardened exchange exist to avoid.
  EXPECT_FALSE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.count(ksan::Category::GlobalRace), 0u) << rep.summary();
  EXPECT_EQ(rep.count(ksan::Category::GlobalOOB), 0u) << rep.summary();
}

/// What a "fused" unpack + boundary-read kernel would look like: one group
/// fills ghost slots while another consumes them inside the same launch.
struct FusedUnpackAndRead {
  static constexpr int kPhases = 1;

  const dcomplex* wire = nullptr;
  dcomplex* ghost = nullptr;
  dcomplex* out = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "fused-unpack-read", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const int lid = lane.local_id();
    if (lane.group_id() == 0) {
      lane.store(&ghost[lid], lane.load(&wire[lid]));  // the unpack half
    } else {
      lane.store(&out[lid], lane.load(&ghost[lid]));  // the boundary read
    }
  }
};

TEST(MultidevSanitize, FusedUnpackAndBoundaryReadIsACrossGroupRace) {
  constexpr int kLocal = 32;
  std::vector<dcomplex> wire(kLocal), ghost(kLocal), out(kLocal);
  const FusedUnpackAndRead fused{.wire = wire.data(), .ghost = ghost.data(), .out = out.data()};

  minisycl::LaunchSpec spec;
  spec.local_size = kLocal;
  spec.global_size = 2 * kLocal;  // group 0 produces, group 1 consumes
  spec.num_phases = 1;
  spec.traits = FusedUnpackAndRead::traits();

  ksan::SanitizeConfig cfg;
  cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
  cfg.regions.push_back(ksan::region_of(ghost.data(), ghost.size()));
  cfg.regions.push_back(ksan::region_of(out.data(), out.size()));
  const ksan::SanitizerReport rep = ksan::sanitize_launch(spec, fused, cfg);

  // Work-groups are never ordered within a launch, so the ghost hand-off is
  // a write/read race — the reason the real protocol splits the launches.
  EXPECT_FALSE(rep.clean()) << rep.summary();
  EXPECT_GT(rep.count(ksan::Category::GlobalRace), 0u) << rep.summary();
  EXPECT_EQ(rep.count(ksan::Category::GlobalOOB), 0u) << rep.summary();
}

}  // namespace
}  // namespace milc::multidev
