// Runner-level behaviour: validation, determinism, naming, and the
// paper-convention GFLOP/s arithmetic.
#include <gtest/gtest.h>

#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

DslashProblem& prob() {
  static DslashProblem p(4, 121);
  return p;
}

TEST(Runner, RejectsInvalidLocalSizes) {
  DslashRunner runner;
  RunRequest bad{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 100,  // not a multiple of 96
                 .variant = Variant::SYCL};
  EXPECT_THROW((void)runner.run(prob(), bad), std::invalid_argument);
  EXPECT_THROW(runner.run_functional(prob(), Strategy::LP3_1, IndexOrder::kMajor, 100),
               std::invalid_argument);
}

TEST(Runner, RejectsSyclCplxOffThreeLpOne) {
  DslashRunner runner;
  EXPECT_THROW(runner.run_functional(prob(), Strategy::LP2, IndexOrder::kMajor, 96, true),
               std::invalid_argument);
}

TEST(Runner, DeterministicAcrossRepeatedRuns) {
  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  const RunResult a = runner.run(prob(), req);
  const RunResult b = runner.run(prob(), req);
  EXPECT_EQ(a.stats.duration_us, b.stats.duration_us);
  EXPECT_EQ(a.stats.counters.l1_tag_requests_global, b.stats.counters.l1_tag_requests_global);
  EXPECT_EQ(a.stats.counters.dram_sectors, b.stats.counters.dram_sectors);
  EXPECT_EQ(a.gflops, b.gflops);
}

TEST(Runner, LabelsIncludeVariant) {
  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCLomaticOpt};
  const RunResult r = runner.run(prob(), req);
  EXPECT_NE(r.label.find("3LP-1"), std::string::npos);
  EXPECT_NE(r.label.find("SYCLomatic-opt"), std::string::npos);
}

TEST(Runner, PerIterationIncludesQueueOverhead) {
  DslashRunner runner;
  RunRequest ooo{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};  // out-of-order
  RunRequest ino = ooo;
  ino.variant = Variant::SYCLomaticOpt;  // in-order, same kernel
  const RunResult a = runner.run(prob(), ooo);
  const RunResult b = runner.run(prob(), ino);
  EXPECT_EQ(a.kernel_us, b.kernel_us);  // identical kernel
  EXPECT_GT(a.per_iter_us, b.per_iter_us);  // ooo pays more per submit
  EXPECT_LT(a.gflops, b.gflops);
}

TEST(Runner, CodegenSlowdownAppliesToKernelTime) {
  DslashRunner runner;
  RunRequest opt_v{.strategy = Strategy::LP3_1,
                   .order = IndexOrder::kMajor,
                   .local_size = 96,
                   .variant = Variant::SYCLomaticOpt};
  RunRequest raw = opt_v;
  raw.variant = Variant::SYCLomatic;
  const RunResult o = runner.run(prob(), opt_v);
  const RunResult r = runner.run(prob(), raw);
  EXPECT_NEAR(r.kernel_us / o.kernel_us, variant_info(Variant::SYCLomatic).codegen_slowdown,
              1e-9);
}

TEST(Runner, GflopsUsesTheoreticalFlops) {
  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP1,
                 .order = IndexOrder::kMajor,
                 .local_size = 64,
                 .variant = Variant::SYCL};
  const RunResult r = runner.run(prob(), req);
  EXPECT_NEAR(r.gflops, prob().flops() / (r.per_iter_us * 1e-6) / 1e9, 1e-9);
}

}  // namespace
}  // namespace milc
