// The work-item index decodes are load-bearing: every kernel's correctness
// and every coalescing conclusion depends on them.  These tests pin the
// bijection, the paper's published formulas, and the local-memory strides.
#include <gtest/gtest.h>

#include <set>

#include "core/index_orders.hpp"

namespace milc {
namespace {

TEST(Decode3, MatchesPaperFormulas) {
  for (std::int64_t gid = 0; gid < 4 * 12; ++gid) {
    const Idx3 k = decode3<Order3::kMajor>(gid);
    EXPECT_EQ(k.s, gid / 12);
    EXPECT_EQ(k.i, static_cast<int>(gid % 3));
    EXPECT_EQ(k.k, static_cast<int>((gid / 3) % 4));
    const Idx3 i = decode3<Order3::iMajor>(gid);
    EXPECT_EQ(i.s, gid / 12);
    EXPECT_EQ(i.i, static_cast<int>((gid / 4) % 3));
    EXPECT_EQ(i.k, static_cast<int>(gid % 4));
  }
}

template <Order3 O>
void check_bijection3(std::int64_t sites) {
  std::set<std::tuple<std::int64_t, int, int>> seen;
  for (std::int64_t gid = 0; gid < sites * 12; ++gid) {
    const Idx3 d = decode3<O>(gid);
    EXPECT_GE(d.s, 0);
    EXPECT_LT(d.s, sites);
    EXPECT_GE(d.i, 0);
    EXPECT_LT(d.i, 3);
    EXPECT_GE(d.k, 0);
    EXPECT_LT(d.k, 4);
    EXPECT_TRUE(seen.insert({d.s, d.i, d.k}).second) << "duplicate at gid " << gid;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sites * 12));
}

TEST(Decode3, IsABijection) {
  check_bijection3<Order3::kMajor>(16);
  check_bijection3<Order3::iMajor>(16);
}

template <Order4 O>
void check_bijection4(std::int64_t sites) {
  std::set<std::tuple<std::int64_t, int, int, int>> seen;
  for (std::int64_t gid = 0; gid < sites * 48; ++gid) {
    const Idx4 d = decode4<O>(gid);
    EXPECT_GE(d.s, 0);
    EXPECT_LT(d.s, sites);
    EXPECT_TRUE(seen.insert({d.s, d.i, d.k, d.l}).second) << "duplicate at gid " << gid;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sites * 48));
}

TEST(Decode4, IsABijectionInAllOrders) {
  check_bijection4<Order4::lp1_kMajor>(8);
  check_bijection4<Order4::lp1_iMajor>(8);
  check_bijection4<Order4::lp2_lMajor>(8);
  check_bijection4<Order4::lp2_iMajor>(8);
}

/// The delta fields must be the local-id distance between work-items that
/// differ by exactly one in k (or l) — the reduction phases depend on it.
template <Order3 O>
void check_delta3() {
  for (std::int64_t gid = 0; gid < 240; ++gid) {
    const Idx3 a = decode3<O>(gid);
    if (a.k >= 3) continue;
    const Idx3 b = decode3<O>(gid + a.delta_k);
    EXPECT_EQ(b.s, a.s);
    EXPECT_EQ(b.i, a.i);
    EXPECT_EQ(b.k, a.k + 1);
  }
}

TEST(Decode3, DeltaKIsTheKStride) {
  check_delta3<Order3::kMajor>();
  check_delta3<Order3::iMajor>();
}

template <Order4 O>
void check_delta4() {
  for (std::int64_t gid = 0; gid < 480; ++gid) {
    const Idx4 a = decode4<O>(gid);
    if (a.k < 3) {
      const Idx4 b = decode4<O>(gid + a.delta_k);
      EXPECT_EQ(b.s, a.s);
      EXPECT_EQ(b.i, a.i);
      EXPECT_EQ(b.l, a.l);
      EXPECT_EQ(b.k, a.k + 1);
    }
    if (a.l < 3) {
      const Idx4 c = decode4<O>(gid + a.delta_l);
      EXPECT_EQ(c.s, a.s);
      EXPECT_EQ(c.i, a.i);
      EXPECT_EQ(c.k, a.k);
      EXPECT_EQ(c.l, a.l + 1);
    }
  }
}

TEST(Decode4, DeltasAreTheStrides) {
  check_delta4<Order4::lp1_kMajor>();
  check_delta4<Order4::lp1_iMajor>();
  check_delta4<Order4::lp2_lMajor>();
  check_delta4<Order4::lp2_iMajor>();
}

TEST(Decode4, ActiveLaneClustering) {
  // §IV-D8: within a 32-lane warp, the work-items sharing one l value sit in
  // runs whose length depends on the order: 12 consecutive for 4LP-1, 3 for
  // 4LP-2 l-major, 1 for 4LP-2 i-major.
  auto max_run_of_same_l = [](auto decode) {
    int best = 0, run = 0, prev = -1;
    for (std::int64_t gid = 0; gid < 32; ++gid) {
      const Idx4 d = decode(gid);
      run = (d.l == prev) ? run + 1 : 1;
      prev = d.l;
      best = std::max(best, run);
    }
    return best;
  };
  EXPECT_EQ(max_run_of_same_l([](std::int64_t g) { return decode4<Order4::lp1_kMajor>(g); }),
            12);
  EXPECT_EQ(max_run_of_same_l([](std::int64_t g) { return decode4<Order4::lp2_lMajor>(g); }),
            3);
  EXPECT_EQ(max_run_of_same_l([](std::int64_t g) { return decode4<Order4::lp2_iMajor>(g); }),
            1);
}

}  // namespace
}  // namespace milc
