// minisycl execution-model tests: phase/barrier semantics, masking, atomics,
// tracing counters and divergence accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minisycl/device.hpp"
#include "minisycl/executor.hpp"
#include "minisycl/queue.hpp"

namespace minisycl {
namespace {

/// phase 0: every item writes its local id to shared memory;
/// phase 1: every item reads its *neighbour's* slot — only correct if the
/// phase boundary provides real barrier semantics.
struct BarrierKernel {
  static constexpr int kPhases = 2;
  int* out;

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    const int lid = lane.local_id();
    const int n = lane.local_range();
    if (phase == 0) {
      lane.template shared_store<int>(lid, lid * 10);
      return;
    }
    const int neighbor = (lid + n - 1) % n;
    const int v = lane.template shared_load<int>(neighbor);
    lane.store(&out[lane.global_id()], v);
  }
};

TEST(Executor, PhaseBoundaryIsABarrier) {
  constexpr int kLocal = 64;
  constexpr int kGlobal = 256;
  std::vector<int> out(kGlobal, -1);
  LaunchSpec spec{kGlobal, kLocal, kLocal * static_cast<int>(sizeof(int)), 2, {}};
  execute_functional(spec, BarrierKernel{out.data()});
  for (int g = 0; g < kGlobal / kLocal; ++g) {
    for (int t = 0; t < kLocal; ++t) {
      EXPECT_EQ(out[static_cast<std::size_t>(g * kLocal + t)],
                ((t + kLocal - 1) % kLocal) * 10);
    }
  }
}

struct AtomicSumKernel {
  static constexpr int kPhases = 1;
  double* sum;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    lane.atomic_add(sum, static_cast<double>(lane.global_id()));
  }
};

TEST(Executor, AtomicAddAccumulatesEverything) {
  double sum = 0.0;
  LaunchSpec spec{512, 64, 0, 1, {}};
  execute_functional(spec, AtomicSumKernel{&sum});
  EXPECT_DOUBLE_EQ(sum, 511.0 * 512.0 / 2.0);
}

struct MaskedStoreKernel {
  static constexpr int kPhases = 1;
  int* out;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const bool head = lane.local_id() % 4 == 0;
    lane.branch(head ? 1 : 2);
    lane.set_masked(!head);
    lane.store(&out[lane.global_id()], 7);
    lane.set_masked(false);
    lane.converge();
  }
};

TEST(Executor, MaskSuppressesSideEffects) {
  std::vector<int> out(128, 0);
  LaunchSpec spec{128, 32, 0, 1, {}};
  execute_functional(spec, MaskedStoreKernel{out.data()});
  for (int i = 0; i < 128; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i % 4 == 0 ? 7 : 0);
}

// ------------------------------------------------------------- profiled ----

/// Each work-item loads one 8-byte value with a given lane stride and adds it
/// into a private sink (stored at the end).
struct StridedLoadKernel {
  static constexpr int kPhases = 1;
  const double* src;
  double* dst;
  std::int64_t stride;  ///< in elements

  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const std::int64_t g = lane.global_id();
    const double v = lane.load(&src[g * stride]);
    lane.flops(2);
    lane.store(&dst[g], v * 2.0);
  }
};

TEST(ProfiledExecutor, CoalescedVsStridedTagRequests) {
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  constexpr int kGlobal = 4096;
  std::vector<double> src(kGlobal * 16, 1.0), dst(kGlobal, 0.0);

  LaunchSpec spec{kGlobal, 128, 0, 1, {}};
  const auto coalesced = execute_profiled(
      m, cal, spec, StridedLoadKernel{src.data(), dst.data(), 1}, "coalesced");
  const auto strided = execute_profiled(
      m, cal, spec, StridedLoadKernel{src.data(), dst.data(), 16}, "strided");

  // Unit stride: 32 lanes x 8 B = 8 sectors/warp.  Stride 16 (128 B): one
  // sector per lane = 32 sectors/warp.
  const auto warps = static_cast<std::uint64_t>(kGlobal / 32);
  EXPECT_EQ(coalesced.counters.warps, warps);
  EXPECT_LT(coalesced.counters.l1_tag_requests_global,
            strided.counters.l1_tag_requests_global);
  EXPECT_GT(strided.timing.total_s, 0.0);
  // Values must still be computed correctly.
  EXPECT_DOUBLE_EQ(dst[5], 2.0);
}

struct DivergentKernel {
  static constexpr int kPhases = 1;
  double* dst;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const int path = static_cast<int>(lane.global_id() % 4);
    lane.branch(path);
    lane.flops(4);
    lane.store(&dst[lane.global_id()], static_cast<double>(path));
    lane.converge();
  }
};

TEST(ProfiledExecutor, DivergenceCountedAndSlotsMultiplied) {
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  std::vector<double> dst(1024, 0.0);
  LaunchSpec spec{1024, 128, 0, 1, {}};
  const auto st = execute_profiled(m, cal, spec, DivergentKernel{dst.data()}, "div");
  EXPECT_EQ(st.counters.branch_events, 1024u / 32u);
  EXPECT_EQ(st.counters.divergent_branches, 1024u / 32u);  // every warp diverges 4 ways
  // The store executes once per path: 4 store instructions per warp.
  EXPECT_EQ(st.counters.global_store_ops, 4u * (1024u / 32u));
  EXPECT_DOUBLE_EQ(dst[3], 3.0);
}

struct SharedConflictKernel {
  static constexpr int kPhases = 1;
  double* dst;
  int stride_words;  ///< lane l touches word l*stride
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const int lid = lane.local_id();
    lane.template shared_store<int>(lid * stride_words, lid);
    const int v = lane.template shared_load<int>(lid * stride_words);
    lane.store(&dst[lane.global_id()], static_cast<double>(v));
  }
};

TEST(ProfiledExecutor, SharedBankConflictsMeasured) {
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  std::vector<double> dst(128, 0.0);
  LaunchSpec conflict_free{128, 128, 128 * 4 * 32, 1, {}};
  const auto free_st = execute_profiled(m, cal, conflict_free,
                                        SharedConflictKernel{dst.data(), 1}, "free");
  const auto conflict_st = execute_profiled(m, cal, conflict_free,
                                            SharedConflictKernel{dst.data(), 32}, "conflict");
  EXPECT_EQ(free_st.counters.shared_wavefronts, free_st.counters.shared_wavefronts_ideal);
  EXPECT_GT(conflict_st.counters.shared_wavefronts,
            conflict_st.counters.shared_wavefronts_ideal * 10);
  EXPECT_DOUBLE_EQ(dst[17], 17.0);
}

struct AtomicConflictKernel {
  static constexpr int kPhases = 1;
  double* sink;
  template <typename Lane>
  void operator()(Lane& lane, int) const {
    lane.atomic_add(&sink[0], 1.0);  // all lanes collide on one address
  }
};

TEST(ProfiledExecutor, AtomicSerializationCounted) {
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  double sink = 0.0;
  LaunchSpec spec{256, 64, 0, 1, {}};
  const auto st = execute_profiled(m, cal, spec, AtomicConflictKernel{&sink}, "atomic");
  EXPECT_DOUBLE_EQ(sink, 256.0);
  EXPECT_EQ(st.counters.atomic_lane_updates, 256u);
  EXPECT_EQ(st.counters.atomic_serial_replays, 256u - 8u);  // 31 replays per warp
  EXPECT_GT(st.timing.atomic_s, 0.0);
}

TEST(Queue, InOrderHasLowerLaunchOverhead) {
  queue in_q(ExecMode::functional, QueueOrder::in_order);
  queue out_q(ExecMode::functional, QueueOrder::out_of_order);
  EXPECT_LT(in_q.launch_overhead_us(), out_q.launch_overhead_us());
}

TEST(Queue, TimelineAccumulates) {
  queue q(ExecMode::functional, QueueOrder::in_order);
  double sum = 0.0;
  LaunchSpec spec{64, 32, 0, 1, {}};
  q.submit(spec, AtomicSumKernel{&sum});
  q.submit(spec, AtomicSumKernel{&sum});
  EXPECT_EQ(q.submissions(), 2);
  EXPECT_NEAR(q.sim_time_us(), 2 * q.launch_overhead_us(), 1e-12);
  q.reset_timeline();
  EXPECT_EQ(q.submissions(), 0);
}

TEST(Device, ReportsA100Shape) {
  device d;
  EXPECT_EQ(d.max_compute_units(), 108);
  EXPECT_EQ(d.max_work_group_size(), 1024);
  EXPECT_EQ(d.sub_group_size(), 32);
  EXPECT_EQ(d.global_mem_cache_size(), 40 * 1024 * 1024);
  EXPECT_NE(d.name().find("A100"), std::string::npos);
}

}  // namespace
}  // namespace minisycl
