// StaggeredOperator and the CG solver — the library surface a downstream
// user consumes.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "core/solver.hpp"

namespace milc {
namespace {

struct Fixture {
  LatticeGeom geom{4};
  GaugeConfiguration cfg{geom};
  Fixture() { cfg.fill_random(111); }
};

TEST(StaggeredOperator, HalvesMatchReference) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.25);
  ColorField in(s.geom, Parity::Odd), out(s.geom, Parity::Even);
  in.fill_random(1);
  op.dslash_eo(in, out);

  GaugeView ve(s.geom, s.cfg, Parity::Even);
  NeighborTable ne(s.geom, Parity::Even);
  ColorField ref(s.geom, Parity::Even);
  dslash_reference(ve, ne, in, ref);
  EXPECT_LT(max_abs_diff(out, ref), 1e-10);
}

TEST(StaggeredOperator, NormalOperatorIsHermitianPositiveDefinite) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.3);
  ColorField x(s.geom, Parity::Even), y(s.geom, Parity::Even);
  x.fill_random(2);
  y.fill_random(3);
  ColorField Ax(s.geom, Parity::Even), Ay(s.geom, Parity::Even);
  op.apply_normal(x, Ax);
  op.apply_normal(y, Ay);
  // Hermitian: <y, A x> == conj(<x, A y>)
  const dcomplex yAx = dot(y, Ax), xAy = dot(x, Ay);
  EXPECT_NEAR(yAx.re, xAy.re, 1e-8);
  EXPECT_NEAR(yAx.im, -xAy.im, 1e-8);
  // Positive definite: <x, A x> >= m^2 |x|^2 > 0.
  const double xAx = dot(x, Ax).re;
  EXPECT_GE(xAx, 0.3 * 0.3 * norm2(x) - 1e-8);
}

TEST(StaggeredOperator, FullOperatorConsistentWithHalves) {
  Fixture s;
  const double m = 0.4;
  StaggeredOperator op(s.geom, s.cfg, m);
  ColorField xe(s.geom, Parity::Even), xo(s.geom, Parity::Odd);
  xe.fill_random(4);
  xo.fill_random(5);
  ColorField oe(s.geom, Parity::Even), oo(s.geom, Parity::Odd);
  op.apply_full(xe, xo, oe, oo);

  ColorField t(s.geom, Parity::Even);
  op.dslash_eo(xo, t);
  axpy(m, xe, t);
  EXPECT_LT(max_abs_diff(oe, t), 1e-12);
}

TEST(CgSolver, ConvergesAndVerifies) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.2);
  ColorField b(s.geom, Parity::Even), x(s.geom, Parity::Even);
  b.fill_random(6);
  x.zero();
  CgOptions opts;
  opts.rel_tol = 1e-9;
  const CgResult r = cg_solve(op, b, x, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-9);
  EXPECT_LE(r.true_relative_residual, 1e-8);  // recursion drift bounded
  EXPECT_GT(r.iterations, 5);
  EXPECT_LT(r.iterations, 2000);
}

TEST(CgSolver, WarmStartConvergesFaster) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.2);
  ColorField b(s.geom, Parity::Even), x_cold(s.geom, Parity::Even);
  b.fill_random(7);
  x_cold.zero();
  CgOptions opts;
  opts.rel_tol = 1e-8;
  const CgResult cold = cg_solve(op, b, x_cold, opts);
  ASSERT_TRUE(cold.converged);

  // Restart from the solution: should converge (almost) immediately.
  ColorField x_warm = x_cold;
  const CgResult warm = cg_solve(op, b, x_warm, opts);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);
}

TEST(CgSolver, ZeroRhsGivesZeroSolution) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.5);
  ColorField b(s.geom, Parity::Even), x(s.geom, Parity::Even);
  b.zero();
  x.fill_random(8);
  const CgResult r = cg_solve(op, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(norm2(x), 0.0);
}

TEST(CgSolver, HeavierMassConvergesFaster) {
  // Condition number ~ (lambda_max + m^2)/m^2: heavier quarks are easier.
  Fixture s;
  ColorField b(s.geom, Parity::Even);
  b.fill_random(9);
  CgOptions opts;
  opts.rel_tol = 1e-8;

  StaggeredOperator light(s.geom, s.cfg, 0.05);
  StaggeredOperator heavy(s.geom, s.cfg, 1.0);
  ColorField x1(s.geom, Parity::Even), x2(s.geom, Parity::Even);
  x1.zero();
  x2.zero();
  const CgResult rl = cg_solve(light, b, x1, opts);
  const CgResult rh = cg_solve(heavy, b, x2, opts);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(rh.converged);
  EXPECT_LT(rh.iterations, rl.iterations);
}

TEST(CgSolver, RespectsIterationCap) {
  Fixture s;
  StaggeredOperator op(s.geom, s.cfg, 0.01);
  ColorField b(s.geom, Parity::Even), x(s.geom, Parity::Even);
  b.fill_random(10);
  x.zero();
  CgOptions opts;
  opts.rel_tol = 1e-14;
  opts.max_iterations = 3;
  const CgResult r = cg_solve(op, b, x, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

}  // namespace
}  // namespace milc
