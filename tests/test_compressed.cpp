// recon-12 compression for the 3LP-1 strategy (extension X2): correctness of
// the cooperative-staging kernel and its traffic signature.
#include <gtest/gtest.h>

#include "core/compressed.hpp"
#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

TEST(CompressedGauge, StoresFirstTwoRowsColumnMajor) {
  DslashProblem p(4, 81);
  CompressedGaugeDevice g(p.view());
  for (std::int64_t s = 0; s < g.sites(); s += 17) {
    for (int l = 0; l < kNlinks; ++l) {
      for (int k = 0; k < kNdim; ++k) {
        for (int i = 0; i < 2; ++i) {
          for (int j = 0; j < kColors; ++j) {
            EXPECT_EQ(g.at(l, s, k, i, j), p.view().link(l, s, k).e[i][j]);
          }
        }
      }
    }
  }
}

class CompressedCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(CompressedCorrectness, MatchesReference) {
  DslashProblem p(4, 82);
  CompressedDslash cd(p.view(), p.neighbors());
  ColorField out(p.geom(), p.target_parity());
  cd.apply(p.b(), out, GetParam());
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(out, ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LocalSizes, CompressedCorrectness, ::testing::Values(96, 192, 384));

TEST(Compressed, ProfiledIsAlsoCorrectAndCheaperOnGauge) {
  DslashProblem p(8, 83);
  CompressedDslash cd(p.view(), p.neighbors());
  ColorField out(p.geom(), p.target_parity());
  const auto cstats = cd.profile(p.b(), out, 96);

  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(out, ref), 1e-9);

  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  const RunResult plain = runner.run(p, req);

  // Gauge traffic drops by ~1/3; unique DRAM bytes must shrink.
  EXPECT_LT(cstats.counters.dram_sectors, plain.stats.counters.dram_sectors);
  // The cooperative staging adds local-memory traffic and barriers.
  EXPECT_GT(cstats.counters.shared_wavefronts, plain.stats.counters.shared_wavefronts);
  EXPECT_GT(cstats.counters.barrier_warp_events, plain.stats.counters.barrier_warp_events);
  // FLOPs grow by the reconstruction work.
  EXPECT_GT(cstats.counters.flops, plain.stats.counters.flops);
}

TEST(Compressed, SharedMemoryBudgetKeepsOccupancy) {
  DslashProblem p(8, 84);
  CompressedDslash cd(p.view(), p.neighbors());
  ColorField out(p.geom(), p.target_parity());
  const auto st = cd.profile(p.b(), out, 768);
  // 48 B/work-item = 36.9 KB/WG still allows the thread-limited 2 groups/SM.
  EXPECT_EQ(st.occupancy.groups_per_sm, 2);
  EXPECT_DOUBLE_EQ(st.occupancy.theoretical, 0.75);
}

TEST(Compressed, NinePhaseStructure) {
  EXPECT_EQ(Dslash3LP1Recon12Kernel::kPhases, 9);
  EXPECT_EQ(Dslash3LP1Recon12Kernel::shared_bytes(768), 768 * 48);
}

}  // namespace
}  // namespace milc
