// Non-hypercubic lattices and wrap-around edge cases: the Dslash operator
// and every strategy must be exact on any even-extent box, including the
// L = 4 case where a +3 hop aliases a -1 hop.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

class AsymmetricLattice : public ::testing::TestWithParam<Coords> {};

TEST_P(AsymmetricLattice, ReferenceMatchesDirectEquation) {
  DslashProblem p(GetParam(), 101);
  ColorField via_view(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), via_view);
  ColorField direct(p.geom(), p.target_parity());
  dslash_from_configuration(p.geom(), p.configuration(), p.target_parity(), p.b(), direct);
  EXPECT_LT(max_abs_diff(via_view, direct), 1e-11);
}

TEST_P(AsymmetricLattice, StrategyKernelMatchesReference) {
  DslashProblem p(GetParam(), 102);
  DslashRunner runner;
  // 3LP-1 k-major at the smallest legal local size that divides the grid.
  int local = 0;
  for (int ls : {96, 192, 384}) {
    if (is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, ls, p.sites())) {
      local = ls;
      break;
    }
  }
  ASSERT_NE(local, 0) << "no valid local size for this shape";
  runner.run_functional(p, Strategy::LP3_1, IndexOrder::kMajor, local);
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(p.c(), ref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AsymmetricLattice,
                         ::testing::Values(Coords{4, 6, 8, 10}, Coords{8, 4, 4, 8},
                                           Coords{6, 6, 4, 12}, Coords{4, 4, 4, 16}),
                         [](const auto& info) {
                           const Coords& c = info.param;
                           return std::to_string(c[0]) + "x" + std::to_string(c[1]) + "x" +
                                  std::to_string(c[2]) + "x" + std::to_string(c[3]);
                         });

TEST(WrapAliasing, ExtentFourThirdHopEqualsBackwardHop) {
  // On an extent-4 dimension, +3 is the same site as -1; the neighbour
  // table must agree and the operator must still match the direct form.
  LatticeGeom g(4);
  NeighborTable t(g, Parity::Even);
  for (std::int64_t s = 0; s < g.half_volume(); s += 3) {
    for (int k = 0; k < kNdim; ++k) {
      EXPECT_EQ(t.at(s, k, 1), t.at(s, k, 2));  // +3 aliases -1
      EXPECT_EQ(t.at(s, k, 3), t.at(s, k, 0));  // -3 aliases +1
    }
  }
}

TEST(WrapAliasing, ExtentSixIsAliasFree) {
  LatticeGeom g(6);
  NeighborTable t(g, Parity::Even);
  for (std::int64_t s = 0; s < g.half_volume(); s += 5) {
    for (int k = 0; k < kNdim; ++k) {
      EXPECT_NE(t.at(s, k, 1), t.at(s, k, 2));
      EXPECT_NE(t.at(s, k, 3), t.at(s, k, 0));
    }
  }
}

TEST(AsymmetricProblem, FlopCountUsesActualVolume) {
  DslashProblem p(Coords{4, 6, 8, 10}, 103);
  EXPECT_EQ(p.sites(), 4 * 6 * 8 * 10 / 2);
  EXPECT_DOUBLE_EQ(p.flops(), kFlopsPerSite * static_cast<double>(p.sites()));
}

TEST(AsymmetricProblem, OddTargetParityWorks) {
  DslashProblem p(Coords{6, 4, 6, 4}, 104, Parity::Odd);
  EXPECT_EQ(p.target_parity(), Parity::Odd);
  EXPECT_EQ(p.b().parity(), Parity::Even);
  ColorField ref(p.geom(), Parity::Odd);
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_GT(norm2(ref), 0.0);
}

}  // namespace
}  // namespace milc
