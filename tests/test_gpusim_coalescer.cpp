// Warp coalescer and shared-memory bank-conflict model tests.
#include <gtest/gtest.h>

#include "gpusim/coalescer.hpp"

namespace gpusim {
namespace {

std::vector<LaneAccess> warp(std::uint64_t base, std::uint64_t stride, std::uint8_t size,
                             int lanes = 32) {
  std::vector<LaneAccess> v;
  for (int l = 0; l < lanes; ++l) {
    v.push_back({base + static_cast<std::uint64_t>(l) * stride, size,
                 static_cast<std::uint8_t>(l)});
  }
  return v;
}

int sectors_of(const std::vector<LaneAccess>& lanes) {
  std::vector<std::uint64_t> out;
  coalesce_sectors(lanes, 32, out);
  return static_cast<int>(out.size());
}

TEST(Coalescer, FullyCoalesced4B) {
  // 32 lanes x 4 B consecutive = 128 B = 4 sectors.
  EXPECT_EQ(sectors_of(warp(0, 4, 4)), 4);
}

TEST(Coalescer, FullyCoalesced8B) {
  // 32 lanes x 8 B consecutive = 256 B = 8 sectors.
  EXPECT_EQ(sectors_of(warp(0, 8, 8)), 8);
}

TEST(Coalescer, Strided128BIsWorstCase) {
  // Each lane in its own sector.
  EXPECT_EQ(sectors_of(warp(0, 128, 8)), 32);
}

TEST(Coalescer, BroadcastIsOneSector) {
  EXPECT_EQ(sectors_of(warp(0x40, 0, 8)), 1);
}

TEST(Coalescer, UnalignedAccessStraddlesSectors) {
  // A single 16 B access at offset 24 touches sectors 0 and 1.
  std::vector<LaneAccess> v = {{24, 16, 0}};
  EXPECT_EQ(sectors_of(v), 2);
}

TEST(Coalescer, SiteStride2304Pattern) {
  // The 1LP AoS pattern: consecutive lanes 2304 B apart (one site block),
  // 16 B loads -> 32 distinct sectors per instruction.
  EXPECT_EQ(sectors_of(warp(0, 2304, 16)), 32);
}

TEST(Coalescer, RowStride48Pattern) {
  // The 3LP k-major pattern: lanes 48 B apart, 16 B loads.  Each lane's 16 B
  // falls in its own sector (gap > sector), but the 32 sectors span a dense
  // 1536 B window — the k-major advantage shows up as L1 line reuse across
  // the j-loop, not at the single-instruction coalescer.
  EXPECT_EQ(sectors_of(warp(0, 48, 16)), 32);
  // The warp's three j-instructions together touch exactly the dense window.
  std::vector<LaneAccess> all;
  for (std::uint64_t j = 0; j < 3; ++j) {
    for (int l = 0; l < 32; ++l) {
      all.push_back({static_cast<std::uint64_t>(l) * 48 + j * 16, 16,
                     static_cast<std::uint8_t>(l)});
    }
  }
  std::vector<std::uint64_t> out;
  coalesce_sectors(all, 32, out);
  EXPECT_EQ(out.size(), 48u);  // 1536 B / 32 B, no waste
}

TEST(Coalescer, OutputSortedUnique) {
  std::vector<LaneAccess> v = {{96, 8, 0}, {0, 8, 1}, {96, 8, 2}, {32, 8, 3}};
  std::vector<std::uint64_t> out;
  coalesce_sectors(v, 32, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 32u);
  EXPECT_EQ(out[2], 96u);
}

// ------------------------------------------------------------------- banks --

TEST(Banks, ConflictFreeUnitStride) {
  // Lane l accesses word l: every bank exactly once.
  const auto v = warp(0, 4, 4);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 1u);
  EXPECT_EQ(r.ideal, 1u);
  EXPECT_EQ(r.excessive(), 0u);
}

TEST(Banks, TwoWayConflictStride2) {
  // Lane l accesses word 2l: banks 0,2,..,30 each serve two distinct words.
  const auto v = warp(0, 8, 4);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 2u);
  EXPECT_EQ(r.ideal, 1u);
  EXPECT_EQ(r.excessive(), 1u);
}

TEST(Banks, BroadcastIsFree) {
  const auto v = warp(0x80, 0, 4);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 1u);
  EXPECT_EQ(r.excessive(), 0u);
}

TEST(Banks, EightByteAccessesNeedTwoWavefronts) {
  // 32 lanes x 8 B unit stride: 64 words over 32 banks -> 2 wavefronts, and
  // that is also the ideal (256 B of distinct data).
  const auto v = warp(0, 8, 8);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 2u);
  EXPECT_EQ(r.ideal, 2u);
  EXPECT_EQ(r.excessive(), 0u);
}

TEST(Banks, SixteenByteStridedConflicts) {
  // 16 B accesses at 16 B stride (the 3LP-1 local array pattern): lane l
  // touches words 4l..4l+3; bank b serves words {b, b+32, b+64, b+96} for
  // the 128-word span -> 4-way conflict.
  const auto v = warp(0, 16, 16);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 4u);
  EXPECT_EQ(r.ideal, 4u);  // 512 B of distinct words is also 4 wavefronts minimum
  EXPECT_EQ(r.excessive(), 0u);
}

TEST(Banks, WorstCaseSameBank) {
  // Lane l accesses word 32*l: all in bank 0 -> 32 wavefronts.
  const auto v = warp(0, 128, 4);
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 32u);
  EXPECT_EQ(r.ideal, 1u);
  EXPECT_EQ(r.excessive(), 31u);
}

TEST(Banks, EmptyInput) {
  const std::vector<LaneAccess> v;
  const auto r = analyze_shared(v, 32, 4);
  EXPECT_EQ(r.wavefronts, 0u);
  EXPECT_EQ(r.ideal, 0u);
}

}  // namespace
}  // namespace gpusim
