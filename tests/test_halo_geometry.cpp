// test_halo_geometry.cpp — the geometry facts the halo-exchange subsystem
// rests on: +-3 displacement wrapping on anisotropic lattices, the minimal
// L = 6 case where a 3-hop grazes the periodic boundary, NeighborTable
// agreement with the displacement formula, and constructor validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "lattice/geometry.hpp"

namespace milc {
namespace {

TEST(LatticeGeom, RejectsOddAndNonPositiveExtents) {
  EXPECT_THROW(LatticeGeom(Coords{8, 8, 7, 8}), std::invalid_argument);
  EXPECT_THROW(LatticeGeom(Coords{8, 0, 8, 8}), std::invalid_argument);
  EXPECT_THROW(LatticeGeom(Coords{-4, 8, 8, 8}), std::invalid_argument);
  EXPECT_THROW(LatticeGeom(5), std::invalid_argument);
}

TEST(LatticeGeom, ValidationErrorNamesDimAndValue) {
  try {
    LatticeGeom geom(Coords{8, 8, 7, 8});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dim 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("extent 7"), std::string::npos) << msg;
  }
}

TEST(LatticeGeom, DisplaceWrapsThreeHopsOnAnisotropicLattice) {
  const LatticeGeom geom(Coords{6, 8, 10, 12});
  // +3 from one below the top of each extent wraps to 2 - (ext - coord).
  EXPECT_EQ(geom.displace(Coords{5, 0, 0, 0}, 0, +3)[0], 2);
  EXPECT_EQ(geom.displace(Coords{0, 7, 0, 0}, 1, +3)[1], 2);
  EXPECT_EQ(geom.displace(Coords{0, 0, 9, 0}, 2, +3)[2], 2);
  EXPECT_EQ(geom.displace(Coords{0, 0, 0, 11}, 3, +3)[3], 2);
  // -3 from near the origin wraps to the top.
  EXPECT_EQ(geom.displace(Coords{1, 0, 0, 0}, 0, -3)[0], 4);
  EXPECT_EQ(geom.displace(Coords{0, 2, 0, 0}, 1, -3)[1], 7);
  EXPECT_EQ(geom.displace(Coords{0, 0, 0, 2}, 3, -3)[3], 11);
  // Displacement along one dim never disturbs the others.
  const Coords moved = geom.displace(Coords{3, 4, 5, 6}, 2, -3);
  EXPECT_EQ(moved, (Coords{3, 4, 2, 6}));
}

TEST(LatticeGeom, MinimalExtentSixGrazesTheBoundary) {
  // L = 6 is the smallest extent where +-3 neighbours stay distinct from
  // +-1 neighbours (and the smallest legal split-local extent in multidev).
  const LatticeGeom geom(Coords{6, 6, 6, 6});
  for (int x = 0; x < 6; ++x) {
    const int fwd = geom.displace(Coords{x, 0, 0, 0}, 0, +3)[0];
    const int bwd = geom.displace(Coords{x, 0, 0, 0}, 0, -3)[0];
    EXPECT_EQ(fwd, (x + 3) % 6);
    EXPECT_EQ(bwd, (x + 3) % 6);  // at L = 6, +3 and -3 land on the same site
    EXPECT_NE(fwd, (x + 1) % 6);
    EXPECT_NE(fwd, (x + 5) % 6);
  }
}

TEST(LatticeGeom, DisplaceRoundTripsAtEveryStencilOffset) {
  const LatticeGeom geom(Coords{6, 12, 8, 10});
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    const Coords c = geom.coords(f);
    for (int k = 0; k < kNdim; ++k) {
      for (const int off : kStencilOffsets) {
        EXPECT_EQ(geom.full_index(geom.displace(geom.displace(c, k, off), k, -off)), f);
      }
    }
  }
}

TEST(NeighborTable, MatchesDisplacementFormulaOnAnisotropicLattice) {
  const LatticeGeom geom(Coords{6, 8, 12, 10});
  for (const Parity target : {Parity::Even, Parity::Odd}) {
    const NeighborTable nbr(geom, target);
    for (std::int64_t s = 0; s < geom.half_volume(); ++s) {
      const Coords c = geom.coords(geom.full_index_of(target, s));
      for (int k = 0; k < kNdim; ++k) {
        for (int l = 0; l < kNlinks; ++l) {
          const std::int64_t nf =
              geom.full_index(geom.displace(c, k, kStencilOffsets[static_cast<std::size_t>(l)]));
          ASSERT_EQ(geom.parity(nf), opposite(target));
          EXPECT_EQ(nbr.at(s, k, l), geom.eo_index(nf));
        }
      }
    }
  }
}

TEST(NeighborTable, WrapNeighboursAreInRangeOnMinimalLattice) {
  const LatticeGeom geom(6);
  const NeighborTable nbr(geom, Parity::Even);
  for (std::int64_t s = 0; s < geom.half_volume(); ++s) {
    for (int k = 0; k < kNdim; ++k) {
      for (int l = 0; l < kNlinks; ++l) {
        EXPECT_GE(nbr.at(s, k, l), 0);
        EXPECT_LT(nbr.at(s, k, l), geom.half_volume());
      }
    }
  }
}

}  // namespace
}  // namespace milc
