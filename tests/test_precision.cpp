// Single-precision fields, the float 3LP-1 kernel and the building blocks of
// mixed-precision solvers.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "core/precision.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

TEST(SComplex, PacksToTwoFloats) {
  static_assert(sizeof(scomplex) == 8);
  static_assert(sizeof(SU3Vector<scomplex>) == 24);
  SUCCEED();
}

TEST(SComplex, TraitsArithmetic) {
  using T = complex_traits<scomplex>;
  scomplex acc = T::make(0.0, 0.0);
  T::mac(acc, {2.0f, -1.0f}, {-0.5f, 3.0f});
  EXPECT_NEAR(T::real(acc), 2.0, 1e-6);
  EXPECT_NEAR(T::imag(acc), 6.5, 1e-6);
  scomplex acc2 = T::make(0.0, 0.0);
  T::conj_mac(acc2, {2.0f, -1.0f}, {-0.5f, 3.0f});
  EXPECT_NEAR(T::real(acc2), -4.0, 1e-6);
  EXPECT_NEAR(T::imag(acc2), 5.5, 1e-6);
}

TEST(FloatField, ConversionRoundTripWithinFloatEps) {
  DslashProblem p(4, 71);
  FloatColorField f(p.b());
  const ColorField back = f.to_double(p.geom());
  EXPECT_LT(max_abs_diff(p.b(), back), 1e-6);
}

TEST(FloatField, BlasMatchesDouble) {
  DslashProblem p(4, 72);
  ColorField x(p.geom(), Parity::Odd), y(p.geom(), Parity::Odd);
  x.fill_random(1);
  y.fill_random(2);
  FloatColorField fx(x), fy(y);

  EXPECT_NEAR(norm2(fx) / norm2(x), 1.0, 1e-5);
  EXPECT_NEAR(dot(fx, fy).re / dot(x, y).re, 1.0, 1e-4);

  axpy(0.5, x, y);
  axpy(0.5, fx, fy);
  EXPECT_NEAR(norm2(fy) / norm2(y), 1.0, 1e-5);
}

TEST(FloatDslashKernel, MatchesDoubleReferenceAtFloatAccuracy) {
  DslashProblem p(4, 73);
  FloatDslash fd(p.device_gauge(), p.neighbors());
  FloatColorField in(p.b()), out(p.geom(), p.target_parity());
  fd.apply(in, out);

  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  const ColorField got = out.to_double(p.geom());

  // Relative accuracy limited by float: values are O(10), so ~1e-5 abs.
  double max_rel = 0.0;
  const double scale = std::sqrt(norm2(ref) / static_cast<double>(ref.size()) / kColors);
  for (std::int64_t s = 0; s < ref.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      max_rel = std::max(max_rel, cabs(got[s].c[i] - ref[s].c[i]) / scale);
    }
  }
  EXPECT_LT(max_rel, 5e-6);
}

TEST(FloatDslashKernel, ProfiledTrafficIsRoughlyHalf) {
  DslashProblem p(8, 74);
  FloatDslash fd(p.device_gauge(), p.neighbors());
  FloatColorField in(p.b()), out(p.geom(), p.target_parity());
  const auto fstats = fd.profile(in, out, 96);

  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  const RunResult d = runner.run(p, req);

  // Unique data halves exactly; tag requests shrink less (the 4-byte
  // neighbour-index loads are precision-independent and 8 B strided loads
  // still straddle sectors).
  const double tag_ratio = static_cast<double>(fstats.counters.l1_tag_requests_global) /
                           static_cast<double>(d.stats.counters.l1_tag_requests_global);
  EXPECT_LT(tag_ratio, 0.85);
  EXPECT_GT(tag_ratio, 0.30);
  const double dram_ratio = static_cast<double>(fstats.counters.dram_sectors) /
                            static_cast<double>(d.stats.counters.dram_sectors);
  EXPECT_LT(dram_ratio, 0.65);
  EXPECT_LT(fstats.duration_us, d.stats.duration_us);
}

TEST(FloatDslashKernel, LinearInSource) {
  DslashProblem p(4, 75);
  FloatDslash fd(p.device_gauge(), p.neighbors());
  FloatColorField in(p.b()), out1(p.geom(), p.target_parity()),
      out2(p.geom(), p.target_parity());
  fd.apply(in, out1);
  // Scale input by 2: output must scale by 2 (up to float rounding).
  for (std::int64_t s = 0; s < in.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      in[s].c[i].re *= 2.0f;
      in[s].c[i].im *= 2.0f;
    }
  }
  fd.apply(in, out2);
  double max_err = 0.0;
  for (std::int64_t s = 0; s < out1.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      max_err = std::max(max_err,
                         std::abs(2.0 * out1[s].c[i].re - out2[s].c[i].re) +
                             std::abs(2.0 * out1[s].c[i].im - out2[s].c[i].im));
    }
  }
  EXPECT_LT(max_err, 1e-3);
}

}  // namespace
}  // namespace milc
