// test_gpusim_link.cpp — the inter-device link model: wire-time arithmetic,
// NVLink/PCIe island selection, and the port-serialised exchange schedule.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "gpusim/link.hpp"

// LinkMessage is an aggregate whose trailing members (site, fault flags,
// start/done times) are outputs of simulate_exchange; tests designated-
// initialise only the inputs.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace gpusim {
namespace {

TEST(LinkModel, WireTimeIsLatencyPlusBytesOverBandwidth) {
  const LinkModel m = dgx_a100_links();
  // 300 GB/s = 300e3 bytes/us: 3 MB takes 10 us on the wire plus latency.
  EXPECT_DOUBLE_EQ(wire_time_us(m, 0, 1, 3'000'000),
                   m.nvlink_latency_us + 3'000'000 / (m.nvlink_bw_gbs * 1e3));
  // Zero payload still pays the latency.
  EXPECT_DOUBLE_EQ(wire_time_us(m, 0, 1, 0), m.nvlink_latency_us);
}

TEST(LinkModel, NvlinkIslandSelectsFabric) {
  LinkModel m = dgx_a100_links();
  m.nvlink_devices = 4;  // devices 0..3 share the NVLink island
  EXPECT_TRUE(is_nvlink(m, 0, 3));
  EXPECT_FALSE(is_nvlink(m, 0, 4));
  EXPECT_FALSE(is_nvlink(m, 4, 5));  // both outside: PCIe

  const std::int64_t bytes = 1'000'000;
  const double nv = wire_time_us(m, 0, 3, bytes);
  const double pcie = wire_time_us(m, 0, 4, bytes);
  EXPECT_DOUBLE_EQ(nv, m.nvlink_latency_us + bytes / (m.nvlink_bw_gbs * 1e3));
  EXPECT_DOUBLE_EQ(pcie, m.pcie_latency_us + bytes / (m.pcie_bw_gbs * 1e3));
  EXPECT_GT(pcie, nv);
}

TEST(SimulateExchange, DistinctPairsOverlapPerfectly) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000},
      {.src = 2, .dst = 3, .bytes = 1'000'000},
  };
  const ExchangeReport rep = simulate_exchange(m, msgs, 4);
  const double one = wire_time_us(m, 0, 1, 1'000'000);
  EXPECT_DOUBLE_EQ(msgs[0].done_us, one);
  EXPECT_DOUBLE_EQ(msgs[1].done_us, one);  // no shared port: fully parallel
  EXPECT_DOUBLE_EQ(rep.finish_us, one);
  EXPECT_EQ(rep.total_bytes, 2'000'000);
}

TEST(SimulateExchange, SharedEgressPortSerialises) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000},
      {.src = 0, .dst = 2, .bytes = 1'000'000},
  };
  simulate_exchange(m, msgs, 4);
  const double one = wire_time_us(m, 0, 1, 1'000'000);
  // Device 0 owns one egress port: the second message starts when the
  // first clears it (start = done of the first, not t = 0).
  EXPECT_DOUBLE_EQ(msgs[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(msgs[1].start_us, one);
  EXPECT_DOUBLE_EQ(msgs[1].done_us, 2 * one);
}

TEST(SimulateExchange, SharedIngressPortSerialises) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {
      {.src = 1, .dst = 0, .bytes = 1'000'000},
      {.src = 2, .dst = 0, .bytes = 1'000'000},
  };
  const ExchangeReport rep = simulate_exchange(m, msgs, 4);
  const double one = wire_time_us(m, 1, 0, 1'000'000);
  EXPECT_DOUBLE_EQ(rep.arrival_us[0], 2 * one);
}

TEST(SimulateExchange, DepartureTimesAreHonoured) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000, .depart_us = 50.0},
  };
  const ExchangeReport rep = simulate_exchange(m, msgs, 2);
  EXPECT_DOUBLE_EQ(msgs[0].start_us, 50.0);
  EXPECT_DOUBLE_EQ(rep.finish_us, 50.0 + wire_time_us(m, 0, 1, 1'000'000));
}

TEST(SimulateExchange, ScheduleIsDeterministic) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> a = {
      {.src = 0, .dst = 1, .bytes = 500'000},
      {.src = 0, .dst = 2, .bytes = 400'000},
      {.src = 1, .dst = 0, .bytes = 300'000},
      {.src = 2, .dst = 1, .bytes = 200'000, .depart_us = 1.0},
  };
  std::vector<LinkMessage> b = a;
  simulate_exchange(m, a, 3);
  simulate_exchange(m, b, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us);
    EXPECT_DOUBLE_EQ(a[i].done_us, b[i].done_us);
  }
}

TEST(SimulateExchange, DroppedMessageOccupiesPortsButNeverArrives) {
  faultsim::FaultPlan plan;
  plan.schedule.push_back(
      faultsim::ScheduledFault{faultsim::FaultKind::msg_drop, 0, 1, "r0->r1"});
  faultsim::ScopedFaultInjection fi(plan);

  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {
      {.src = 0, .dst = 1, .bytes = 1'000'000},
      {.src = 0, .dst = 2, .bytes = 1'000'000},
  };
  const ExchangeReport rep = simulate_exchange(m, msgs, 4);
  const double one = wire_time_us(m, 0, 1, 1'000'000);

  EXPECT_TRUE(msgs[0].dropped);
  EXPECT_FALSE(msgs[1].dropped);
  EXPECT_EQ(rep.dropped, 1);
  // The lost message still burned device 0's egress port — its sibling had
  // to wait behind it — but it contributes nothing to the arrival horizon.
  EXPECT_DOUBLE_EQ(msgs[1].start_us, one);
  EXPECT_DOUBLE_EQ(rep.arrival_us[1], 0.0) << "nothing was delivered to device 1";
  EXPECT_DOUBLE_EQ(rep.finish_us, msgs[1].done_us);
}

TEST(SimulateExchange, DelayedMessagePaysLatencyAndBandwidthPenalty) {
  faultsim::FaultPlan plan;
  plan.delay_latency_us = 25.0;
  plan.delay_bw_factor = 2.0;
  plan.schedule.push_back(
      faultsim::ScheduledFault{faultsim::FaultKind::msg_delay, 0, 1, "r0->r1"});
  faultsim::ScopedFaultInjection fi(plan);

  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {{.src = 0, .dst = 1, .bytes = 1'000'000}};
  simulate_exchange(m, msgs, 2);

  EXPECT_TRUE(msgs[0].delayed);
  const double clean = wire_time_us(m, 0, 1, 1'000'000);
  // A bw_factor of 2 doubles the transfer term: one extra bytes/bw on top
  // of the clean wire time, plus the latency spike.
  const double extra = 25.0 + 1'000'000 / (m.nvlink_bw_gbs * 1e3);
  EXPECT_NEAR(msgs[0].done_us, clean + extra, 1e-9);
}

TEST(SimulateExchange, CorruptedMessageArrivesWithAKey) {
  faultsim::FaultPlan plan;
  plan.seed = 9;
  plan.schedule.push_back(
      faultsim::ScheduledFault{faultsim::FaultKind::msg_corrupt, 0, 1, "r0->r1"});
  faultsim::ScopedFaultInjection fi(plan);

  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> msgs = {{.src = 0, .dst = 1, .bytes = 1'000'000}};
  const ExchangeReport rep = simulate_exchange(m, msgs, 2);

  EXPECT_TRUE(msgs[0].corrupted);
  EXPECT_NE(msgs[0].corrupt_key, 0u);
  EXPECT_EQ(rep.corrupted, 1);
  // Corruption is a payload event, not a timing event.
  EXPECT_DOUBLE_EQ(msgs[0].done_us, wire_time_us(m, 0, 1, 1'000'000));
  EXPECT_DOUBLE_EQ(rep.arrival_us[1], msgs[0].done_us);
}

TEST(SimulateExchange, FaultedScheduleIsDeterministic) {
  auto run = [] {
    faultsim::FaultPlan plan;
    plan.seed = 31;
    plan.p_msg_drop = 0.3;
    plan.p_msg_delay = 0.3;
    faultsim::ScopedFaultInjection fi(plan);
    const LinkModel m = dgx_a100_links();
    std::vector<LinkMessage> msgs;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j) msgs.push_back({.src = i, .dst = j, .bytes = 250'000});
      }
    }
    simulate_exchange(m, msgs, 4);
    return msgs;
  };
  const auto a = run();
  const auto b = run();
  int faulted = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].delayed, b[i].delayed);
    EXPECT_DOUBLE_EQ(a[i].done_us, b[i].done_us);
    faulted += (a[i].dropped || a[i].delayed) ? 1 : 0;
  }
  EXPECT_GT(faulted, 0) << "the storm must actually fire over 12 messages";
}

TEST(SimulateExchange, RejectsMalformedMessages) {
  const LinkModel m = dgx_a100_links();
  std::vector<LinkMessage> self = {{.src = 1, .dst = 1, .bytes = 8}};
  EXPECT_THROW(simulate_exchange(m, self, 2), std::invalid_argument);
  std::vector<LinkMessage> range = {{.src = 0, .dst = 5, .bytes = 8}};
  EXPECT_THROW(simulate_exchange(m, range, 2), std::invalid_argument);
  std::vector<LinkMessage> negative = {{.src = 0, .dst = 1, .bytes = -1}};
  EXPECT_THROW(simulate_exchange(m, negative, 2), std::invalid_argument);
}

}  // namespace
}  // namespace gpusim
