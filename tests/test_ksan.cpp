// ksan: injected-bug kernels must be flagged with the right category, and
// every shipped paper kernel must sanitize clean (zero errors; perf lints
// are advisory — Table I shows real bank conflicts and divergence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <tuple>
#include <vector>

#include "core/compressed.hpp"
#include "core/kernels_3lp.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"
#include "ksan/sanitizer.hpp"
#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"
#include "qudaref/staggered_test.hpp"
#include "wilson/wilson.hpp"

namespace milc {
namespace {

/// One L=8 problem shared by the whole suite (building the random gauge
/// configuration dominates; the sweeps reuse it like the benches do).
DslashProblem& shared_problem() {
  static DslashProblem p(8);
  return p;
}

// ------------------------------------------------------------------------
// injected-bug kernels
// ------------------------------------------------------------------------

/// 3LP-3 with the atomic update replaced by a plain read-modify-write: the
/// exact bug the atomics exist to prevent.  Four work-items (k = 0..3) now
/// race on C(i, s) within one phase.
struct Racy3LP3Kernel {
  static constexpr int kPhases = 2;
  DslashArgs<dcomplex> args;

  static minisycl::KernelTraits traits() {
    return {.name = "3LP-3 no-atomic", .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    using T = complex_traits<dcomplex>;
    const Idx3 id = decode3<Order3::kMajor>(lane.global_id());
    if (phase == 0) {
      lane.set_masked(id.k != 0);
      lane.store(&args.c_out[id.s].c[id.i], T::make(0.0, 0.0));
      lane.set_masked(false);
      return;
    }
    for (int l = 0; l < kNlinks; ++l) {
      const std::int32_t n = device::load_neighbor(lane, args.neighbors, id.s, id.k, l);
      const dcomplex v = device::row_dot(lane, args, l, id.s, id.k, id.i, &args.b[n]);
      const double sign = kStencilSigns[static_cast<std::size_t>(l)];
      // BUG: non-atomic read-modify-write of the shared accumulator.
      dcomplex c = lane.load(&args.c_out[id.s].c[id.i]);
      c += T::make(sign * T::real(v), sign * T::imag(v));
      lane.store(&args.c_out[id.s].c[id.i], c);
    }
  }
};

/// The shipped 3LP-1 with its barrier removed: both halves of the kernel run
/// in a single phase, so the k-reduction reads local-memory slots that other
/// work-items store in the same epoch.
struct BarrierSkipping3LP1Kernel {
  static constexpr int kPhases = 1;
  Dslash3LP1Kernel<Order3::kMajor> inner;

  static minisycl::KernelTraits traits() {
    return {.name = "3LP-1 no-barrier", .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return Dslash3LP1Kernel<Order3::kMajor>::shared_bytes(local_size);
  }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    inner(lane, 0);  // store partials...
    inner(lane, 1);  // ...and reduce them with no barrier in between
  }
};

/// Reads a buffer that was freed before the launch.
struct UseAfterFreeKernel {
  static constexpr int kPhases = 1;
  const double* stale = nullptr;
  double* out = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "uaf-read", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const std::int64_t i = lane.global_id();
    lane.store(&out[i], lane.load(&stale[i]));
  }
};

/// Reads a local-accessor slot no work-item ever stored.
struct UninitSharedReadKernel {
  static constexpr int kPhases = 1;
  double* out = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "uninit-shared", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return local_size * static_cast<int>(sizeof(double));
  }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    lane.store(&out[lane.global_id()], lane.template shared_load<double>(lane.local_id()));
  }
};

/// Stores one slot past the launch's local_mem request.
struct SharedOverrunKernel {
  static constexpr int kPhases = 1;

  static minisycl::KernelTraits traits() {
    return {.name = "shared-overrun", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return local_size * static_cast<int>(sizeof(double));
  }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    lane.template shared_store<double>(lane.local_id() + 1, 1.0);  // last item overruns
  }
};

/// Stride-8-doubles local stores: every warp op lands on two banks.
struct BankConflictKernel {
  static constexpr int kPhases = 1;

  static minisycl::KernelTraits traits() {
    return {.name = "bank-conflict", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return local_size * 8 * static_cast<int>(sizeof(double));
  }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    lane.template shared_store<double>(lane.local_id() * 8, 1.0);
  }
};

/// Stride-32-doubles global loads: one 32 B sector per lane.
struct UncoalescedKernel {
  static constexpr int kPhases = 1;
  const double* in = nullptr;
  double* out = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "uncoalesced", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const std::int64_t i = lane.global_id();
    lane.store(&out[i], lane.load(&in[i * 32]));
  }
};

/// Odd/even lanes take different arms.
struct DivergentKernel {
  static constexpr int kPhases = 1;
  double* out = nullptr;

  static minisycl::KernelTraits traits() {
    return {.name = "divergent", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const std::int64_t i = lane.global_id();
    const bool odd = (lane.local_id() % 2) != 0;
    lane.branch_test(odd);
    lane.store(&out[i], odd ? 1.0 : 2.0);
  }
};

minisycl::LaunchSpec spec_for(std::int64_t global, int local, int shared, int phases) {
  minisycl::LaunchSpec spec;
  spec.global_size = global;
  spec.local_size = local;
  spec.shared_bytes = shared;
  spec.num_phases = phases;
  return spec;
}

// ------------------------------------------------------------------------
// error detection
// ------------------------------------------------------------------------

TEST(KsanErrors, RemovedAtomicIsAGlobalRace) {
  DslashProblem p(4);
  Racy3LP3Kernel kernel{p.args()};
  ksan::SanitizeConfig cfg;
  declare_dslash_regions(kernel.args, cfg);
  const auto rep = ksan::sanitize_launch(
      spec_for(p.sites() * 12, 96, 0, Racy3LP3Kernel::kPhases), kernel, cfg);
  EXPECT_GT(rep.count(ksan::Category::GlobalRace), 0u) << rep.summary();
  EXPECT_FALSE(rep.clean());
  ASSERT_FALSE(rep.records.empty());
  EXPECT_EQ(rep.records.front().category, ksan::Category::GlobalRace);
}

TEST(KsanErrors, AtomicVariantOfTheSameKernelIsClean) {
  // The control: the shipped 3LP-3 (same loop, atomic update) has no race.
  DslashProblem p(4);
  DslashRunner runner;
  const auto rep = runner.sanitize(p, Strategy::LP3_3, IndexOrder::kMajor, 96);
  EXPECT_EQ(rep.count(ksan::Category::GlobalRace), 0u) << rep.summary();
  EXPECT_TRUE(rep.clean());
}

TEST(KsanErrors, OffByOneNeighbourIsOutOfBounds) {
  DslashProblem p(4);
  DslashArgs<dcomplex> a = p.args();

  // Poison one gather index with `sites` (one past the last source site).
  // The source field is re-homed in a padded buffer so the out-of-range slot
  // cannot coincide with another declared region.
  std::vector<SU3Vector<dcomplex>> b_padded(static_cast<std::size_t>(a.sites) + 4);
  std::copy(a.b, a.b + a.sites, b_padded.begin());
  std::vector<std::int32_t> nbr(a.neighbors, a.neighbors + a.sites * kNeighbors);
  nbr[0] = static_cast<std::int32_t>(a.sites);
  a.b = b_padded.data();
  a.neighbors = nbr.data();

  Dslash3LP1Kernel<Order3::kMajor> kernel{a};
  ksan::SanitizeConfig cfg;
  declare_dslash_regions(a, cfg);
  const auto rep = ksan::sanitize_launch(
      spec_for(a.sites * 12, 96, kernel.shared_bytes(96), kernel.kPhases), kernel, cfg);
  EXPECT_GT(rep.count(ksan::Category::GlobalOOB), 0u) << rep.summary();
  EXPECT_FALSE(rep.clean());
}

TEST(KsanErrors, FreedBufferReadIsUseAfterFree) {
  minisycl::queue q(minisycl::ExecMode::functional);
  double* out = minisycl::malloc_device<double>(64, q);
  // Freed last so no later allocation can recycle (and re-legitimise) it.
  double* stale = minisycl::malloc_device<double>(64, q);
  minisycl::free(stale, q);

  UseAfterFreeKernel kernel{.stale = stale, .out = out};
  const auto rep = ksan::sanitize_launch(spec_for(64, 32, 0, 1), kernel);
  EXPECT_EQ(rep.count(ksan::Category::GlobalUseAfterFree), 64u) << rep.summary();
  EXPECT_FALSE(rep.clean());
  ASSERT_FALSE(rep.records.empty());
  EXPECT_EQ(rep.records.front().category, ksan::Category::GlobalUseAfterFree);

  minisycl::free(out, q);
}

TEST(KsanErrors, SkippedBarrierIsAnIntraPhaseHazard) {
  DslashProblem p(4);
  BarrierSkipping3LP1Kernel kernel{.inner = {p.args()}};
  ksan::SanitizeConfig cfg;
  declare_dslash_regions(kernel.inner.args, cfg);
  const auto rep = ksan::sanitize_launch(
      spec_for(p.sites() * 12, 96, BarrierSkipping3LP1Kernel::shared_bytes(96), 1), kernel,
      cfg);
  EXPECT_GT(rep.count(ksan::Category::SharedHazard), 0u) << rep.summary();
  EXPECT_FALSE(rep.clean());
}

TEST(KsanErrors, ReadBeforeWriteOfLocalMemory) {
  minisycl::queue q(minisycl::ExecMode::functional);
  double* out = minisycl::malloc_device<double>(64, q);
  UninitSharedReadKernel kernel{.out = out};
  const auto rep = ksan::sanitize_launch(
      spec_for(64, 32, UninitSharedReadKernel::shared_bytes(32), 1), kernel);
  EXPECT_EQ(rep.count(ksan::Category::UninitSharedRead), 64u) << rep.summary();
  EXPECT_FALSE(rep.clean());
  minisycl::free(out, q);
}

TEST(KsanErrors, LocalMemoryOverrunIsSharedOOB) {
  SharedOverrunKernel kernel;
  const auto rep = ksan::sanitize_launch(
      spec_for(64, 32, SharedOverrunKernel::shared_bytes(32), 1), kernel);
  // The last work-item of each group stores one slot past the request.
  EXPECT_EQ(rep.count(ksan::Category::SharedOOB), 2u) << rep.summary();
  EXPECT_FALSE(rep.clean());
}

// ------------------------------------------------------------------------
// perf lints (advisory: kernels stay `clean()`)
// ------------------------------------------------------------------------

TEST(KsanLints, StridedLocalStoresAreABankConflict) {
  BankConflictKernel kernel;
  const auto rep = ksan::sanitize_launch(
      spec_for(64, 32, BankConflictKernel::shared_bytes(32), 1), kernel);
  EXPECT_GT(rep.count(ksan::Category::SharedBankConflict), 0u) << rep.summary();
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(rep.lint_count(), 0u);
}

TEST(KsanLints, StridedGlobalLoadsAreUncoalesced) {
  minisycl::queue q(minisycl::ExecMode::functional);
  double* in = minisycl::malloc_device<double>(64 * 32, q);
  double* out = minisycl::malloc_device<double>(64, q);
  UncoalescedKernel kernel{.in = in, .out = out};
  const auto rep = ksan::sanitize_launch(spec_for(64, 32, 0, 1), kernel);
  EXPECT_GT(rep.count(ksan::Category::UncoalescedAccess), 0u) << rep.summary();
  EXPECT_TRUE(rep.clean());
  minisycl::free(in, q);
  minisycl::free(out, q);
}

TEST(KsanLints, SplitWarpArmsAreADivergentBranch) {
  minisycl::queue q(minisycl::ExecMode::functional);
  double* out = minisycl::malloc_device<double>(64, q);
  DivergentKernel kernel{.out = out};
  const auto rep = ksan::sanitize_launch(spec_for(64, 32, 0, 1), kernel);
  EXPECT_GT(rep.count(ksan::Category::DivergentBranch), 0u) << rep.summary();
  EXPECT_TRUE(rep.clean());
  minisycl::free(out, q);
}

// ------------------------------------------------------------------------
// clean sweep over every shipped strategy x index order (L = 8)
// ------------------------------------------------------------------------

using Config = std::tuple<Strategy, IndexOrder>;

std::vector<Config> shipped_configs() {
  std::vector<Config> out;
  for (Strategy s : all_strategies()) {
    for (IndexOrder o : orders_of(s)) out.emplace_back(s, o);
  }
  return out;
}

class KsanCleanSweep : public ::testing::TestWithParam<Config> {};

TEST_P(KsanCleanSweep, ShippedKernelSanitizesClean) {
  const auto [s, o] = GetParam();
  DslashProblem& p = shared_problem();
  const int local_size = paper_local_sizes(s, o, p.sites()).front();
  DslashRunner runner;
  const auto rep = runner.sanitize(p, s, o, local_size);
  EXPECT_EQ(rep.error_count(), 0u) << rep.summary();
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(rep.checked_global, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, KsanCleanSweep,
                         ::testing::ValuesIn(shipped_configs()),
                         [](const ::testing::TestParamInfo<Config>& param_info) {
                           std::string n = config_label(std::get<0>(param_info.param),
                                                        std::get<1>(param_info.param), 0);
                           n.resize(n.find(" /"));
                           for (char& c : n) {
                             if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
                           }
                           return n;
                         });

TEST(KsanClean, SyclCplxVariantSanitizesClean) {
  DslashProblem& p = shared_problem();
  DslashRunner runner;
  const auto rep = runner.sanitize(p, Strategy::LP3_1, IndexOrder::kMajor, 96,
                                   /*use_syclcplx=*/true);
  EXPECT_EQ(rep.error_count(), 0u) << rep.summary();
}

TEST(KsanClean, QudaReferenceSanitizesCleanForAllSchemes) {
  DslashProblem& p = shared_problem();
  qudaref::StaggeredDslashTest harness(p);
  for (Reconstruct scheme : {Reconstruct::k18, Reconstruct::k12, Reconstruct::k9}) {
    const auto rep = harness.sanitize(scheme);
    EXPECT_EQ(rep.error_count(), 0u) << rep.summary();
    EXPECT_GT(rep.checked_global, 0u);
  }
}

TEST(KsanClean, CompressedDslashSanitizesClean) {
  DslashProblem& p = shared_problem();
  CompressedDslash cd(p.view(), p.neighbors());
  const auto rep = cd.sanitize(p.b(), p.c(), 96);
  EXPECT_EQ(rep.error_count(), 0u) << rep.summary();
  EXPECT_GT(rep.checked_shared, 0u);
}

TEST(KsanClean, WilsonDslashSanitizesClean) {
  LatticeGeom geom(8);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(91);
  const GaugeView view(geom, cfg, Parity::Even);
  const NeighborTable nbr(geom, Parity::Even);
  const DeviceGaugeLayout dev(view);
  wilson::WilsonField in(geom, Parity::Odd);
  in.fill_random(92);
  wilson::WilsonField out(geom, Parity::Even);

  wilson::WilsonDslash d(dev, nbr);
  const auto rep = d.sanitize(in, out, 128);
  EXPECT_EQ(rep.error_count(), 0u) << rep.summary();
  EXPECT_GT(rep.checked_global, 0u);
}

/// Sanitized launches perform the same valid side effects as a functional
/// run: the output of a sanitized 3LP-1 must match the reference.
TEST(KsanClean, SanitizedLaunchStillComputesTheRightAnswer) {
  DslashProblem p(4);
  DslashRunner runner;
  (void)runner.sanitize(p, Strategy::LP3_1, IndexOrder::kMajor, 96);
  ColorField sanitized = p.c();

  runner.run_functional(p, Strategy::LP3_1, IndexOrder::kMajor, 96);
  for (std::int64_t i = 0; i < p.sites(); ++i) {
    for (int c = 0; c < kColors; ++c) {
      EXPECT_DOUBLE_EQ(sanitized.data()[i].c[c].re, p.c().data()[i].c[c].re);
      EXPECT_DOUBLE_EQ(sanitized.data()[i].c[c].im, p.c().data()[i].c[c].im);
    }
  }
}

}  // namespace
}  // namespace milc
