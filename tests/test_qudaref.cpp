// QUDA-like staggered baseline: correctness for every reconstruction scheme,
// autotuning behaviour, and the compression performance ladder.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "qudaref/staggered_test.hpp"

namespace milc {
namespace {

class QudaCorrectness : public ::testing::TestWithParam<Reconstruct> {};

TEST_P(QudaCorrectness, MatchesReference) {
  DslashProblem p(4, 51);
  qudaref::StaggeredDslashTest t(p);
  t.run_functional(GetParam());
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(p.c(), ref), 1e-9) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Schemes, QudaCorrectness,
                         ::testing::Values(Reconstruct::k18, Reconstruct::k12,
                                           Reconstruct::k9),
                         [](const auto& info) {
                           return std::string("recon") +
                                  std::to_string(reals_per_link(info.param));
                         });

TEST(QudaBaseline, ProfiledRunIsAlsoCorrect) {
  DslashProblem p(4, 52);
  qudaref::StaggeredDslashTest t(p);
  const auto r = t.run_at(Reconstruct::k18, 128);
  EXPECT_GT(r.kernel_us, 0.0);
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(p.c(), ref), 1e-9);
}

TEST(QudaBaseline, TuningCandidatesDivideGrid) {
  DslashProblem p(8, 53);
  qudaref::StaggeredDslashTest t(p);
  const auto c = t.tuning_candidates();
  ASSERT_FALSE(c.empty());
  for (int ls : c) EXPECT_EQ(p.sites() % ls, 0);
}

TEST(QudaBaseline, AutotunePicksNoWorseThanFixed) {
  DslashProblem p(8, 54);
  qudaref::StaggeredDslashTest t(p);
  const auto tuned = t.run(Reconstruct::k18);
  for (int ls : t.tuning_candidates()) {
    const auto fixed = t.run_at(Reconstruct::k18, ls);
    EXPECT_LE(tuned.kernel_us, fixed.kernel_us + 1e-9) << "local " << ls;
  }
}

TEST(QudaBaseline, CompressionLadderIncreasesThroughput) {
  // Paper §IV-D3: recon 18 -> 12 -> 9 runs 634 -> 728 -> 825 GFLOP/s.  The
  // *nominal-FLOP* rate must increase monotonically with compression.
  DslashProblem p(8, 55);
  qudaref::StaggeredDslashTest t(p);
  const auto r18 = t.run(Reconstruct::k18);
  const auto r12 = t.run(Reconstruct::k12);
  const auto r9 = t.run(Reconstruct::k9);
  EXPECT_GT(r12.gflops, r18.gflops);
  EXPECT_GT(r9.gflops, r12.gflops);
  // Gauge traffic shrinks with the compression scheme.
  EXPECT_GT(r18.stats.counters.l1_tag_requests_global,
            r12.stats.counters.l1_tag_requests_global);
  EXPECT_GT(r12.stats.counters.l1_tag_requests_global,
            r9.stats.counters.l1_tag_requests_global);
}

TEST(QudaBaseline, CompressedKernelsCountReconstructionFlops) {
  DslashProblem p(4, 56);
  qudaref::StaggeredDslashTest t(p);
  const auto r18 = t.run_at(Reconstruct::k18, 128);
  const auto r12 = t.run_at(Reconstruct::k12, 128);
  EXPECT_GT(r12.stats.counters.flops, r18.stats.counters.flops);
}

TEST(QudaBaseline, SiteKernelIsRegisterLimited) {
  // Site-per-thread + whole-site accumulators: 64+ registers, 50% ceiling —
  // the "parallelism" axis 3LP-1 beats QUDA on (paper conclusion).
  DslashProblem p(8, 57);
  qudaref::StaggeredDslashTest t(p);
  const auto r = t.run_at(Reconstruct::k18, 256);
  EXPECT_STREQ(r.stats.occupancy.limiter, "registers");
  EXPECT_LE(r.stats.occupancy.theoretical, 0.5);
}

}  // namespace
}  // namespace milc
