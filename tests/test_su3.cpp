// SU(3) algebra, random generation and gauge-compression tests.
#include <gtest/gtest.h>

#include <cmath>

#include "su3/random_su3.hpp"
#include "su3/reconstruct.hpp"
#include "su3/su3_matrix.hpp"

namespace milc {
namespace {

SU3Matrix<dcomplex> rand_mat(std::uint64_t seed) {
  Rng rng(seed);
  return random_su3(rng);
}

SU3Vector<dcomplex> rand_vec(std::uint64_t seed) {
  Rng rng(seed);
  return random_vector(rng);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

class RandomSU3 : public ::testing::TestWithParam<int> {};

TEST_P(RandomSU3, IsSpecialUnitary) {
  const auto u = rand_mat(static_cast<std::uint64_t>(GetParam()));
  EXPECT_LT(unitarity_defect(u), 1e-12);
  const dcomplex d = det(u);
  EXPECT_NEAR(d.re, 1.0, 1e-12);
  EXPECT_NEAR(d.im, 0.0, 1e-12);
}

TEST_P(RandomSU3, AdjointIsInverse) {
  const auto u = rand_mat(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto p = matmul(u, adjoint(u));
  EXPECT_LT(max_abs_diff(p, SU3Matrix<dcomplex>::identity()), 1e-12);
}

TEST_P(RandomSU3, MatvecPreservesNorm) {
  const auto u = rand_mat(static_cast<std::uint64_t>(GetParam()) + 2000);
  const auto v = rand_vec(static_cast<std::uint64_t>(GetParam()) + 3000);
  EXPECT_NEAR(norm2(matvec(u, v)), norm2(v), 1e-10);
}

TEST_P(RandomSU3, AdjMatvecMatchesAdjointThenMatvec) {
  const auto u = rand_mat(static_cast<std::uint64_t>(GetParam()) + 4000);
  const auto v = rand_vec(static_cast<std::uint64_t>(GetParam()) + 5000);
  const auto a = adj_matvec(u, v);
  const auto b = matvec(adjoint(u), v);
  for (int i = 0; i < kColors; ++i) {
    EXPECT_NEAR(a.c[i].re, b.c[i].re, 1e-12);
    EXPECT_NEAR(a.c[i].im, b.c[i].im, 1e-12);
  }
}

TEST_P(RandomSU3, InnerProductAdjointIdentity) {
  // <U x, y> == <x, U^dag y>
  const auto u = rand_mat(static_cast<std::uint64_t>(GetParam()) + 6000);
  const auto x = rand_vec(static_cast<std::uint64_t>(GetParam()) + 7000);
  const auto y = rand_vec(static_cast<std::uint64_t>(GetParam()) + 8000);
  const dcomplex lhs = dot(matvec(u, x), y);
  const dcomplex rhs = dot(x, adj_matvec(u, y));
  EXPECT_NEAR(lhs.re, rhs.re, 1e-12);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSU3, ::testing::Range(1, 21));

TEST(SU3Matrix, TraceCyclicity) {
  const auto a = rand_mat(101), b = rand_mat(102);
  const dcomplex t1 = trace(matmul(a, b));
  const dcomplex t2 = trace(matmul(b, a));
  EXPECT_NEAR(t1.re, t2.re, 1e-12);
  EXPECT_NEAR(t1.im, t2.im, 1e-12);
}

TEST(SU3Matrix, MatmulAssociativity) {
  const auto a = rand_mat(201), b = rand_mat(202), c = rand_mat(203);
  const auto lhs = matmul(matmul(a, b), c);
  const auto rhs = matmul(a, matmul(b, c));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-12);
}

TEST(SU3Matrix, FrobeniusNormOfUnitaryIsThree) {
  EXPECT_NEAR(frobenius_norm2(rand_mat(301)), 3.0, 1e-12);
}

TEST(SU3Matrix, Reunitarize) {
  auto u = rand_mat(401);
  // Perturb.
  u.e[0][0] += dcomplex{1e-3, -2e-3};
  u.e[2][1] += dcomplex{-5e-4, 1e-3};
  EXPECT_GT(unitarity_defect(u), 1e-4);
  const auto v = reunitarize(u);
  EXPECT_LT(unitarity_defect(v), 1e-12);
  EXPECT_LT(max_abs_diff(u, v), 0.02);  // projection stays close
}

// ------------------------------------------------------------ compression --

class ReconRoundTrip : public ::testing::TestWithParam<std::tuple<Reconstruct, int>> {};

TEST_P(ReconRoundTrip, ExactForSU3) {
  const auto [scheme, seed] = GetParam();
  const auto u = rand_mat(static_cast<std::uint64_t>(seed) + 9000);
  std::array<double, 18> buf{};
  pack_link(scheme, u, buf);
  const auto v = unpack_link(scheme, std::span<const double>(buf.data(), 18));
  EXPECT_LT(max_abs_diff(u, v), 1e-10) << to_string(scheme);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ReconRoundTrip,
    ::testing::Combine(::testing::Values(Reconstruct::k18, Reconstruct::k12, Reconstruct::k9),
                       ::testing::Range(1, 11)));

TEST(Recon, RealsPerLink) {
  EXPECT_EQ(reals_per_link(Reconstruct::k18), 18);
  EXPECT_EQ(reals_per_link(Reconstruct::k12), 12);
  EXPECT_EQ(reals_per_link(Reconstruct::k9), 9);
}

TEST(Recon, Names) {
  EXPECT_STREQ(to_string(Reconstruct::k18), "recon-18");
  EXPECT_STREQ(to_string(Reconstruct::k12), "recon-12");
  EXPECT_STREQ(to_string(Reconstruct::k9), "recon-9");
}

TEST(Recon, Recon9HandlesU3Phase) {
  // recon-9 must be exact for e^{i phi} * SU(3) (HISQ long-link shape).
  auto u = rand_mat(777);
  const double phi = 0.3;
  const dcomplex ph{std::cos(phi), std::sin(phi)};
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j) u.e[i][j] = cmul(ph, u.e[i][j]);
  std::array<double, 9> buf{};
  pack_link(Reconstruct::k9, u, buf);
  const auto v = unpack_link(Reconstruct::k9, std::span<const double>(buf.data(), 9));
  EXPECT_LT(max_abs_diff(u, v), 1e-10);
}

TEST(Recon, Recon12ThirdRowIsCrossProduct) {
  const auto u = rand_mat(888);
  std::array<double, 12> buf{};
  pack_link(Reconstruct::k12, u, buf);
  const auto v = unpack_link(Reconstruct::k12, std::span<const double>(buf.data(), 12));
  // Rows 0 and 1 are stored verbatim.
  for (int j = 0; j < kColors; ++j) {
    EXPECT_EQ(u.e[0][j], v.e[0][j]);
    EXPECT_EQ(u.e[1][j], v.e[1][j]);
  }
}

TEST(Recon, SafetyPredicate) {
  EXPECT_TRUE(is_recon9_safe(rand_mat(999)));
  // A matrix with first row (1,0,0) is the degenerate case.
  SU3Matrix<dcomplex> id = SU3Matrix<dcomplex>::identity();
  EXPECT_FALSE(is_recon9_safe(id));
}

TEST(Recon, FlopEstimatesAreOrdered) {
  EXPECT_EQ(reconstruct_flops(Reconstruct::k18), 0.0);
  EXPECT_GT(reconstruct_flops(Reconstruct::k12), 0.0);
  EXPECT_GT(reconstruct_flops(Reconstruct::k9), reconstruct_flops(Reconstruct::k12));
}


TEST(SU3Vector, DotIsSesquilinear) {
  const auto x = rand_vec(501), y = rand_vec(502), z = rand_vec(503);
  // <x, y+z> = <x,y> + <x,z>
  const auto sum = y + z;
  const dcomplex lhs = dot(x, sum);
  const dcomplex rhs = dot(x, y) + dot(x, z);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-12);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-12);
  // <x, y> = conj(<y, x>)
  const dcomplex xy = dot(x, y), yx = dot(y, x);
  EXPECT_NEAR(xy.re, yx.re, 1e-12);
  EXPECT_NEAR(xy.im, -yx.im, 1e-12);
  // <x, x> = |x|^2 real and positive
  const dcomplex xx = dot(x, x);
  EXPECT_NEAR(xx.re, norm2(x), 1e-12);
  EXPECT_NEAR(xx.im, 0.0, 1e-14);
}

TEST(SU3Vector, ScalarArithmetic) {
  const auto x = rand_vec(504), y = rand_vec(505);
  auto s = x + y;
  s -= y;
  for (int i = 0; i < kColors; ++i) {
    EXPECT_NEAR(s.c[i].re, x.c[i].re, 1e-13);
    EXPECT_NEAR(s.c[i].im, x.c[i].im, 1e-13);
  }
  const auto d = 2.0 * x;
  EXPECT_NEAR(norm2(d), 4.0 * norm2(x), 1e-10);
}

TEST(Recon, PackIsDeterministicAndUnpackIdempotent) {
  const auto u = rand_mat(601);
  std::array<double, 18> b1{}, b2{};
  pack_link(Reconstruct::k12, u, b1);
  pack_link(Reconstruct::k12, u, b2);
  EXPECT_EQ(b1, b2);
  // pack(unpack(pack(u))) == pack(u)
  const auto v = unpack_link(Reconstruct::k12, std::span<const double>(b1.data(), 12));
  std::array<double, 18> b3{};
  pack_link(Reconstruct::k12, v, b3);
  for (int r = 0; r < 12; ++r) {
    EXPECT_NEAR(b1[static_cast<std::size_t>(r)], b3[static_cast<std::size_t>(r)], 1e-14);
  }
}

TEST(Recon, AdjointLinksAlsoRoundTrip) {
  // The gauge view stores adjoints of SU(3) links — still SU(3), so every
  // scheme must reconstruct them exactly (qudaref depends on this).
  const auto u = adjoint(rand_mat(602));
  for (auto scheme : {Reconstruct::k18, Reconstruct::k12, Reconstruct::k9}) {
    std::array<double, 18> buf{};
    pack_link(scheme, u, buf);
    const auto v = unpack_link(scheme, std::span<const double>(buf.data(), 18));
    EXPECT_LT(max_abs_diff(u, v), 1e-10) << to_string(scheme);
  }
}

}  // namespace
}  // namespace milc
