// Wilson Schur-complement solver: operator identities and CGNE convergence.
#include <gtest/gtest.h>

#include "wilson/wilson_solver.hpp"

namespace milc::wilson {
namespace {

struct Fixture {
  LatticeGeom geom{4};
  GaugeConfiguration cfg{geom};
  Fixture() { cfg.fill_random(131); }
};

TEST(WilsonOperator, SchurDaggerIsTheAdjoint) {
  Fixture f;
  WilsonOperator op(f.geom, f.cfg, 0.2);
  WilsonField x(f.geom, Parity::Even), y(f.geom, Parity::Even);
  x.fill_random(1);
  y.fill_random(2);
  WilsonField Sx(f.geom, Parity::Even), Sdy(f.geom, Parity::Even);
  op.apply_schur(x, Sx);
  op.apply_schur_dagger(y, Sdy);
  // <y, S x> == <S^dag y, x> == conj(<x, S^dag y>)
  const dcomplex a = dot(y, Sx);
  const dcomplex b = dot(x, Sdy);
  EXPECT_NEAR(a.re, b.re, 1e-8);
  EXPECT_NEAR(a.im, -b.im, 1e-8);
}

TEST(WilsonOperator, SchurReducesToDiagonalOnZeroHops) {
  // With unit gauge links and a constant field, D psi relates simply; at
  // minimum the diagonal part must dominate for heavy mass.
  Fixture f;
  WilsonOperator op(f.geom, f.cfg, 10.0);
  WilsonField x(f.geom, Parity::Even), Sx(f.geom, Parity::Even);
  x.fill_random(3);
  op.apply_schur(x, Sx);
  // S = 14 I - (1/56) D_eo D_oe: the diagonal term carries ~99% of the norm.
  WilsonField diag = x;
  scale(op.diag(), diag);
  axpy(-1.0, Sx, diag);
  EXPECT_LT(norm2(diag), 0.05 * norm2(Sx));
}

TEST(WilsonSolver, ConvergesWithTrueResidual) {
  Fixture f;
  WilsonOperator op(f.geom, f.cfg, 0.3);
  WilsonField b(f.geom, Parity::Even), x(f.geom, Parity::Even);
  b.fill_random(4);
  x.zero();
  const WilsonCgResult r = solve_schur_cg(op, b, x, 1e-9, 4000);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.true_relative_residual, 1e-7);
  EXPECT_GT(r.iterations, 1);
}

TEST(WilsonSolver, HeavierMassConvergesFaster) {
  Fixture f;
  WilsonField b(f.geom, Parity::Even);
  b.fill_random(5);
  WilsonOperator light(f.geom, f.cfg, 0.05), heavy(f.geom, f.cfg, 2.0);
  WilsonField x1(f.geom, Parity::Even), x2(f.geom, Parity::Even);
  x1.zero();
  x2.zero();
  const auto rl = solve_schur_cg(light, b, x1, 1e-8, 8000);
  const auto rh = solve_schur_cg(heavy, b, x2, 1e-8, 8000);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(rh.converged);
  EXPECT_LT(rh.iterations, rl.iterations);
}

TEST(WilsonSolver, ZeroRhs) {
  Fixture f;
  WilsonOperator op(f.geom, f.cfg, 0.5);
  WilsonField b(f.geom, Parity::Even), x(f.geom, Parity::Even);
  b.zero();
  x.fill_random(6);
  const auto r = solve_schur_cg(op, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(norm2(x), 0.0);
}

TEST(WilsonBlas, AxpyXpayScale) {
  Fixture f;
  WilsonField x(f.geom, Parity::Even), y(f.geom, Parity::Even);
  x.fill_random(7);
  y.fill_random(8);
  const double n_x = norm2(x);

  WilsonField z = x;
  scale(2.0, z);
  EXPECT_NEAR(norm2(z), 4.0 * n_x, 1e-6 * n_x);

  WilsonField w = y;
  axpy(1.0, x, w);
  axpy(-1.0, x, w);
  EXPECT_NEAR(norm2(w) / norm2(y), 1.0, 1e-10);

  WilsonField v = y;
  xpay(x, 0.0, v);
  EXPECT_LT(max_abs_diff(v, x), 1e-15);
}

}  // namespace
}  // namespace milc::wilson
