// test_multidev.cpp — domain decomposition, halo exchange, and the
// bit-for-bit equivalence of multi-device and single-device Dslash.
//
// The exactness contract has two halves:
//  * run_reference (serial, dslash_reference loop order, but through the
//    shard/ghost data) must equal the global dslash_reference *exactly* —
//    this isolates the halo protocol from kernel summation orders.
//  * run_functional with any strategy must equal the single-device
//    run_functional of the same strategy *exactly* — same per-site
//    arithmetic on bit-identical inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dslash_ref.hpp"
#include "multidev/runner.hpp"

namespace milc::multidev {
namespace {

TEST(PartitionGrid, RankNumberingRoundTrips) {
  const PartitionGrid g{.devices = {1, 2, 2, 2}};
  EXPECT_EQ(g.total(), 8);
  for (int r = 0; r < g.total(); ++r) {
    EXPECT_EQ(g.rank_of(g.coords_of(r)), r);
  }
  EXPECT_EQ(PartitionGrid::along(3, 4).devices, (Coords{1, 1, 1, 4}));
  EXPECT_EQ(g.label(), "1x2x2x2");
}

TEST(Partitioner, RejectsIndivisibleExtent) {
  const LatticeGeom geom(16);
  EXPECT_THROW(Partitioner(geom, PartitionGrid::along(3, 3), Parity::Even),
               std::invalid_argument);
}

TEST(Partitioner, RejectsOddLocalExtent) {
  const LatticeGeom geom(Coords{6, 8, 8, 8});
  EXPECT_THROW(Partitioner(geom, PartitionGrid::along(0, 2), Parity::Even),
               std::invalid_argument);
}

TEST(Partitioner, RejectsLocalExtentBelowTwiceHaloDepth) {
  const LatticeGeom geom(Coords{8, 8, 8, 8});
  // 8 / 2 = 4 < 2 * kHaloDepth: depth-3 ghosts would alias owned sites.
  EXPECT_THROW(Partitioner(geom, PartitionGrid::along(2, 2), Parity::Even),
               std::invalid_argument);
}

TEST(Partitioner, ShardAccounting) {
  const LatticeGeom geom(12);
  const PartitionGrid grid{.devices = {1, 1, 2, 2}};
  const Partitioner part(geom, grid, Parity::Even);
  ASSERT_EQ(part.shards().size(), 4u);

  std::int64_t targets = 0;
  for (const Shard& sh : part.shards()) {
    EXPECT_EQ(sh.targets(), 12 * 12 * 6 * 6 / 2);
    EXPECT_EQ(sh.targets(), sh.n_interior + sh.n_boundary);
    EXPECT_EQ(sh.sources(), sh.targets());  // opposite parity, same block
    targets += sh.targets();

    // Two split dims x two faces, each face = the source-parity halves of
    // the depth-1..3 planes: 3 * (12*12*6 / 2) wire sites per message.
    ASSERT_EQ(sh.halo.size(), 4u);
    for (const HaloMsg& msg : sh.halo) {
      EXPECT_EQ(msg.count(), 3 * 12 * 12 * 6 / 2);
      EXPECT_EQ(msg.bytes(), msg.count() * 48);
      EXPECT_EQ(static_cast<std::int64_t>(msg.send_slots.size()), msg.count());
    }
    EXPECT_EQ(sh.n_ghosts, 4 * 3 * 12 * 12 * 6 / 2);

    // Every gather entry resolves inside the extended source array, and
    // interior targets never reach a ghost slot.
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      for (int e = 0; e < kNeighbors; ++e) {
        const std::int32_t n = sh.neighbors[static_cast<std::size_t>(t * kNeighbors + e)];
        ASSERT_GE(n, 0);
        ASSERT_LT(n, sh.extended_sources());
        if (t < sh.n_interior) {
          ASSERT_LT(n, sh.sources());
        }
      }
    }
  }
  EXPECT_EQ(targets, geom.half_volume());
}

TEST(Partitioner, WireOrderAgreesBetweenSenderAndReceiver) {
  const LatticeGeom geom(12);
  const Partitioner part(geom, PartitionGrid{.devices = {1, 2, 1, 2}}, Parity::Even);
  for (const Shard& sh : part.shards()) {
    for (const HaloMsg& msg : sh.halo) {
      const Shard& peer = part.shard(msg.peer);
      for (std::int64_t i = 0; i < msg.count(); ++i) {
        // The sender's gather slot must hold exactly the global site the
        // receiver files under ghost slot ghost_base + i.
        EXPECT_EQ(peer.source_eo[static_cast<std::size_t>(
                      msg.send_slots[static_cast<std::size_t>(i)])],
                  msg.site_eo[static_cast<std::size_t>(i)]);
      }
    }
  }
}

class MultidevExactness : public ::testing::TestWithParam<Coords> {};

TEST_P(MultidevExactness, ReferencePathMatchesGlobalReferenceBitForBit) {
  DslashProblem problem(12, /*seed=*/7);
  ColorField ref(problem.geom(), problem.target_parity());
  dslash_reference(problem.view(), problem.neighbors(), problem.b(), ref);

  const MultiDeviceRunner runner;
  ColorField out(problem.geom(), problem.target_parity());
  runner.run_reference(problem, PartitionGrid{.devices = GetParam()}, out);
  EXPECT_EQ(max_abs_diff(ref, out), 0.0);
}

TEST_P(MultidevExactness, FunctionalPathMatchesSingleDeviceBitForBit) {
  const MultiDeviceRunner runner;
  const DslashRunner single;

  struct Config {
    Strategy s;
    IndexOrder o;
    int local;
  };
  const Config configs[] = {
      {Strategy::LP3_1, IndexOrder::kMajor, 768},  // the paper's best
      {Strategy::LP1, IndexOrder::kMajor, 128},    // site-per-thread
      {Strategy::LP3_3, IndexOrder::kMajor, 96},   // atomic accumulation
  };
  for (const Config& cfg : configs) {
    DslashProblem problem(12, /*seed=*/7);
    single.run_functional(problem, cfg.s, cfg.o, cfg.local);
    ColorField expected = problem.c();

    problem.c().zero();
    runner.run_functional(problem, PartitionGrid{.devices = GetParam()}, cfg.s, cfg.o,
                          cfg.local);
    EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0)
        << config_label(cfg.s, cfg.o, cfg.local);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MultidevExactness,
                         ::testing::Values(Coords{1, 1, 1, 1},  // 1 device
                                           Coords{1, 1, 1, 2},  // 2 devices
                                           Coords{1, 1, 2, 2},  // 4, multi-dim
                                           Coords{1, 2, 2, 2}   // 8, multi-dim
                                           ),
                         [](const auto& param_info) {
                           const Coords& d = param_info.param;
                           return std::to_string(d[0]) + "x" + std::to_string(d[1]) + "x" +
                                  std::to_string(d[2]) + "x" + std::to_string(d[3]);
                         });

TEST(Multidev, AnisotropicMultiDimSplitIsExact) {
  DslashProblem problem(Coords{8, 12, 12, 16}, /*seed=*/11);
  ColorField ref(problem.geom(), problem.target_parity());
  dslash_reference(problem.view(), problem.neighbors(), problem.b(), ref);

  const MultiDeviceRunner runner;
  const PartitionGrid grid{.devices = {1, 2, 2, 2}};  // locals 8 x 6 x 6 x 8
  ColorField out(problem.geom(), problem.target_parity());
  runner.run_reference(problem, grid, out);
  EXPECT_EQ(max_abs_diff(ref, out), 0.0);

  const DslashRunner single;
  single.run_functional(problem, Strategy::LP3_1, IndexOrder::kMajor, 96);
  ColorField expected = problem.c();
  problem.c().zero();
  runner.run_functional(problem, grid, Strategy::LP3_1, IndexOrder::kMajor, 96);
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);
}

TEST(Multidev, ProfiledRunReportsOverlapTimelineAndExactOutput) {
  DslashProblem problem(12, /*seed=*/5);
  const DslashRunner single;
  single.run_functional(problem, Strategy::LP3_1, IndexOrder::kMajor, 768);
  const ColorField expected = problem.c();
  problem.c().zero();

  const MultiDeviceRunner runner;
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid::along(3, 2);
  mreq.req = RunRequest{.strategy = Strategy::LP3_1,
                        .order = IndexOrder::kMajor,
                        .local_size = 768,
                        .variant = Variant::SYCL};
  const MultiDevResult res = runner.run(problem, mreq);

  // Profiled shard kernels perform the same arithmetic: output still exact.
  EXPECT_EQ(max_abs_diff(expected, problem.c()), 0.0);

  EXPECT_EQ(res.devices, 2);
  EXPECT_GT(res.per_iter_us, 0.0);
  EXPECT_GT(res.gflops, 0.0);
  EXPECT_GE(res.overlap_efficiency, 0.0);
  EXPECT_LE(res.overlap_efficiency, 1.0);
  EXPECT_GT(res.comm_fraction, 0.0);
  EXPECT_GT(res.surface_fraction, 0.0);
  EXPECT_LE(res.surface_fraction, 1.0);

  std::int64_t halo_bytes = 0;
  ASSERT_EQ(res.per_device.size(), 2u);
  for (const DeviceTimeline& t : res.per_device) {
    EXPECT_GT(t.pack_us, 0.0);
    EXPECT_GT(t.unpack_us, 0.0);
    EXPECT_GT(t.boundary_us, 0.0);
    EXPECT_GT(t.arrival_us, t.pack_us);  // the wire is never instantaneous
    EXPECT_GE(t.iter_us, t.pack_us + t.interior_us + t.unpack_us + t.boundary_us);
    EXPECT_LE(t.iter_us, res.per_iter_us);
    halo_bytes += t.halo_bytes_in;
  }
  EXPECT_EQ(res.halo_bytes, halo_bytes);
  EXPECT_GT(res.halo_bytes, 0);
}

TEST(Multidev, SingleDeviceGridDelegatesToDslashRunner) {
  DslashProblem problem(12, /*seed=*/5);
  const RunRequest req{.strategy = Strategy::LP3_1,
                       .order = IndexOrder::kMajor,
                       .local_size = 768,
                       .variant = Variant::SYCL};
  const DslashRunner single;
  const RunResult expect = single.run(problem, req);

  const MultiDeviceRunner runner;
  const MultiDevResult res = runner.run(problem, MultiDevRequest{.req = req});
  EXPECT_EQ(res.devices, 1);
  EXPECT_EQ(res.per_iter_us, expect.per_iter_us);
  EXPECT_EQ(res.gflops, expect.gflops);
  EXPECT_EQ(res.halo_bytes, 0);
  EXPECT_EQ(res.overlap_efficiency, 1.0);
}

// --- two-level topology ------------------------------------------------------

TEST(Topology, TwoNodeRunMatchesSingleNodeAndSingleDeviceBitForBit) {
  const RunRequest req{.strategy = Strategy::LP3_1,
                       .order = IndexOrder::kMajor,
                       .local_size = 768,
                       .variant = Variant::SYCL};
  const DslashRunner single;
  DslashProblem expected(12, /*seed=*/7);
  single.run_functional(expected, req.strategy, req.order, req.local_size);

  const MultiDeviceRunner runner;
  const PartitionGrid grid{.devices = {1, 1, 2, 2}};

  DslashProblem island_p(12, /*seed=*/7);
  MultiDevRequest island_req;
  island_req.grid = grid;
  island_req.req = req;
  const MultiDevResult island = runner.run(island_p, island_req);

  DslashProblem fabric_p(12, /*seed=*/7);
  MultiDevRequest fabric_req = island_req;
  fabric_req.topo = gpusim::cluster(2, 2);
  const MultiDevResult fabric = runner.run(fabric_p, fabric_req);

  // Placement prices the exchange differently — it must never change a bit.
  EXPECT_EQ(max_abs_diff(expected.c(), island_p.c()), 0.0);
  EXPECT_EQ(max_abs_diff(island_p.c(), fabric_p.c()), 0.0);

  // Byte accounting: {1,1,2,2} over a 2x2 cluster keeps the z split on
  // NVLink while the t split (both faces, thanks to the wrap) crosses the
  // fabric.  Each slab is 3 * (12*12*6/2) * 48 B = 62208 B.
  EXPECT_EQ(island.nodes, 1);
  EXPECT_EQ(island.intra_node_bytes, island.halo_bytes);
  EXPECT_EQ(island.inter_node_bytes, 0);
  EXPECT_EQ(island.fabric_messages, 0);

  EXPECT_EQ(fabric.nodes, 2);
  EXPECT_EQ(fabric.intra_node_bytes, 8 * 62'208);
  EXPECT_EQ(fabric.fabric_messages, 4);  // r0<->r2 and r1<->r3, coalesced
  EXPECT_EQ(fabric.inter_node_bytes,
            8 * 62'208 + 4 * 2 * 32);  // payload + frame headers
  EXPECT_EQ(fabric.halo_bytes, island.halo_bytes);
  // Half the bytes ride the fabric yet cost more wire time than the NVLink
  // half — the asymmetry the partitioner optimises against.  (Total iteration
  // times are not compared: simulated kernel stats depend on the problem
  // instances' buffer addresses, and overlap can hide the slower wire.)
  EXPECT_GT(fabric.inter_wire_us, fabric.intra_wire_us);
}

TEST(Topology, EffectiveTopologyTracksFailover) {
  const gpusim::NodeTopology topo = gpusim::cluster(2, 2);
  EXPECT_EQ(effective_topology(topo, 4).nodes, 2);
  // Two survivors fit inside one node group: NVLink island, no fabric term.
  const gpusim::NodeTopology two = effective_topology(topo, 2);
  EXPECT_EQ(two.nodes, 1);
  EXPECT_EQ(two.devices_per_node, 2);
  EXPECT_FALSE(two.multi_node());

  EXPECT_EQ(effective_topology(gpusim::cluster(2, 4), 8).nodes, 2);
  EXPECT_EQ(effective_topology(gpusim::cluster(2, 4), 4).nodes, 1);
  // A survivor count that does not fill whole node groups collapses too —
  // post-failover remnants are treated as NVLink peers.
  EXPECT_EQ(effective_topology(gpusim::cluster(2, 4), 6).nodes, 1);
}

TEST(GridScore, ClassifiesIntraAndInterBytesExactly) {
  const LatticeGeom geom(12);
  const gpusim::NodeTopology topo = gpusim::cluster(2, 2);
  const GridScore sc = score_grid(geom, PartitionGrid{.devices = {1, 1, 2, 2}}, topo);
  // Rank numbering is dim-0-fastest, so the z split varies inside a node
  // group (intra) and the t split across groups (inter).
  EXPECT_EQ(sc.intra_bytes, 8 * 62'208);
  EXPECT_EQ(sc.inter_bytes, 8 * 62'208);
  EXPECT_EQ(sc.inter_pairs, 4);
  EXPECT_GT(sc.cost_us, 0.0);

  // The same grid on one island has no fabric term and a lower cost.
  const GridScore flat =
      score_grid(geom, PartitionGrid{.devices = {1, 1, 2, 2}}, gpusim::cluster(1, 4));
  EXPECT_EQ(flat.intra_bytes, 16 * 62'208);
  EXPECT_EQ(flat.inter_bytes, 0);
  EXPECT_EQ(flat.inter_pairs, 0);
  EXPECT_LT(flat.cost_us, sc.cost_us);

  EXPECT_THROW((void)score_grid(geom, PartitionGrid{.devices = {1, 1, 2, 2}},
                                gpusim::cluster(1, 2)),
               std::invalid_argument);  // grid larger than the topology
  EXPECT_THROW((void)score_grid(geom, PartitionGrid::along(3, 4), gpusim::cluster(1, 4)),
               std::invalid_argument);  // local extent 3 below 2 * kHaloDepth
}

TEST(ChooseGrid, ReproducesTheSingleNodeConvention) {
  const LatticeGeom geom(16);
  EXPECT_EQ(choose_grid(geom, gpusim::cluster(1, 2)).devices, (Coords{1, 1, 1, 2}));
  EXPECT_EQ(choose_grid(geom, gpusim::cluster(1, 4)).devices, (Coords{1, 1, 2, 2}));
}

TEST(ChooseGrid, PrefersIntraNodeCutsOnAsymmetricGeometry) {
  // On a torus a dimension split by 2 pays the wrap: BOTH its faces cross
  // the node boundary.  A dimension split 4-ways over 2 nodes crosses the
  // fabric on only 2 of its 4 cuts.  With z = 24 the 4-way z split exists
  // and halves the inter-node traffic of any 2-way split.
  const LatticeGeom geom(Coords{12, 12, 24, 12});
  const gpusim::NodeTopology topo = gpusim::cluster(2, 2);

  const GridScore zheavy = score_grid(geom, PartitionGrid{.devices = {1, 1, 4, 1}}, topo);
  const GridScore tsplit = score_grid(geom, PartitionGrid{.devices = {1, 1, 2, 2}}, topo);
  EXPECT_EQ(zheavy.inter_bytes, 4 * 124'416);  // 2 of 4 z cuts cross, 2 dirs
  EXPECT_EQ(tsplit.inter_bytes, 8 * 124'416);  // the wrap doubles the t cut
  EXPECT_LT(zheavy.cost_us, tsplit.cost_us);

  EXPECT_EQ(choose_grid(geom, topo).devices, (Coords{1, 1, 4, 1}));
}

TEST(EnumerateGrids, FiltersSplitsTheHaloCannotSupport) {
  // At 16^4 a 4-way split leaves local extent 4 < 2 * kHaloDepth: only the
  // six two-dim 2x2 assignments (and nothing 4-way) survive.
  const std::vector<PartitionGrid> grids = enumerate_grids(LatticeGeom(16), 4);
  EXPECT_EQ(grids.size(), 6u);
  for (const PartitionGrid& g : grids) {
    for (int d = 0; d < kNdim; ++d) {
      EXPECT_LE(g.devices[static_cast<std::size_t>(d)], 2);
    }
  }
  // partition_error mirrors the Partitioner's constructor validation.
  EXPECT_FALSE(partition_error(LatticeGeom(16), PartitionGrid::along(3, 4)).empty());
  EXPECT_TRUE(partition_error(LatticeGeom(16), PartitionGrid::along(3, 2)).empty());
}

TEST(Multidev, PickLocalSizeFallsBackAndThrows) {
  // Preferred size is legal: returned unchanged.
  EXPECT_EQ(pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 4096), 768);
  // 768 does not divide 40 * 12 = 480: falls back to a legal pool entry.
  EXPECT_EQ(pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 40), 96);
  // 81 sites under 1LP: no multiple of 32 divides 81, so the relaxed
  // (algorithmic-multiple-only) ladder kicks in with a partial last warp.
  EXPECT_EQ(pick_local_size(Strategy::LP1, IndexOrder::kMajor, 128, 81), 81);
  // A single 3LP site still launches: one group of the 12-item quartet fold.
  EXPECT_EQ(pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 1), 12);
  EXPECT_THROW((void)pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace milc::multidev
