// Sectored-cache and DRAM row-buffer model tests.
#include <gtest/gtest.h>

#include "gpusim/cache.hpp"
#include "gpusim/dram.hpp"

namespace gpusim {
namespace {

// A tiny cache: 4 sets x 2 ways x 128 B lines = 1 KiB, 32 B sectors.
SectoredCache tiny() { return SectoredCache(1024, 128, 32, 2); }

TEST(SectoredCache, ColdMissThenHit) {
  auto c = tiny();
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x101f, false).hit);  // same sector
}

TEST(SectoredCache, SectorGranularity) {
  auto c = tiny();
  EXPECT_FALSE(c.access(0x0, false).hit);
  // Same 128 B line, different 32 B sector: line present, sector missing.
  EXPECT_FALSE(c.access(0x20, false).hit);
  EXPECT_TRUE(c.access(0x20, false).hit);
  EXPECT_TRUE(c.access(0x0, false).hit);  // first sector still resident
}

TEST(SectoredCache, LruEviction) {
  auto c = tiny();
  // Three lines mapping to the same set (set stride = 4 lines = 512 B).
  EXPECT_FALSE(c.access(0 * 512, false).hit);
  EXPECT_FALSE(c.access(1 * 512, false).hit);
  EXPECT_TRUE(c.access(0 * 512, false).hit);   // touch line 0 -> line 1 is LRU
  EXPECT_FALSE(c.access(2 * 512, false).hit);  // evicts line 1
  EXPECT_TRUE(c.access(0 * 512, false).hit);
  EXPECT_FALSE(c.access(1 * 512, false).hit);  // line 1 was evicted
}

TEST(SectoredCache, DirtyWritebackOnEviction) {
  auto c = tiny();
  c.access(0 * 512, true);   // dirty sector
  c.access(0 * 512 + 32, true);  // second dirty sector, same line
  c.access(1 * 512, false);
  const auto out = c.access(2 * 512, false);  // evicts the dirty line (LRU)
  EXPECT_EQ(out.writeback_sectors, 2);
}

TEST(SectoredCache, NoAllocateLeavesCacheCold) {
  auto c = tiny();
  EXPECT_FALSE(c.access(0x40, false, /*allocate=*/false).hit);
  EXPECT_FALSE(c.access(0x40, false).hit);  // still a miss: nothing was installed
}

TEST(SectoredCache, FlushReturnsDirtySectors) {
  auto c = tiny();
  c.access(0, true);     // set 0, dirty
  c.access(128, true);   // set 1, dirty
  c.access(256, false);  // set 2, clean
  EXPECT_EQ(c.flush(), 2);
  EXPECT_FALSE(c.access(0, false).hit);
}

TEST(SectoredCache, ResetClears) {
  auto c = tiny();
  c.access(0, false);
  c.reset();
  EXPECT_FALSE(c.access(0, false).hit);
}

TEST(SectoredCache, CapacityHoldsWorkingSet) {
  // 1 KiB cache must keep a 1 KiB working set resident (no conflict misses
  // with perfect alignment: 8 lines over 4 sets x 2 ways).
  auto c = tiny();
  for (int rep = 0; rep < 3; ++rep) {
    int misses = 0;
    for (std::uint64_t a = 0; a < 1024; a += 32) {
      if (!c.access(a, false).hit) ++misses;
    }
    if (rep == 0) {
      EXPECT_EQ(misses, 32);  // cold
    } else {
      EXPECT_EQ(misses, 0);  // fully resident
    }
  }
}

// -------------------------------------------------------------------- DRAM --

TEST(DramModel, StreamingHitsOpenRows) {
  MachineModel m = a100();
  Calibration cal;
  DramModel d(m, cal);
  // A long consecutive-sector stream: within each 256 B channel interleave
  // chunk, 7 of 8 sectors hit the open row.
  for (std::uint64_t a = 0; a < 1 << 20; a += 32) d.access(a);
  EXPECT_GT(d.burst_efficiency(), 0.85);
}

TEST(DramModel, ScatteredMissesRows) {
  MachineModel m = a100();
  Calibration cal;
  DramModel d(m, cal);
  // Jump by a prime number of rows every access: almost every access misses.
  std::uint64_t a = 0;
  for (int i = 0; i < 10000; ++i) {
    d.access(a);
    a += 8192 * 7 + 256;
  }
  EXPECT_LT(d.burst_efficiency(), 0.55);
}

TEST(DramModel, OpaqueWritebacksArePessimistic) {
  MachineModel m = a100();
  Calibration cal;
  DramModel d(m, cal);
  d.access_opaque(10);
  EXPECT_EQ(d.sectors(), 10u);
  EXPECT_EQ(d.row_hits(), 0u);
}

TEST(DramModel, CostUnitsCombineHitsAndMisses) {
  MachineModel m = a100();
  Calibration cal;
  cal.dram_row_miss_penalty = 3.0;
  DramModel d(m, cal);
  d.access(0);      // row miss
  d.access(32);     // row hit
  EXPECT_DOUBLE_EQ(d.cost_units(), 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(d.burst_efficiency(), 2.0 / 4.0);
}

}  // namespace
}  // namespace gpusim
