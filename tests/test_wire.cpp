// test_wire.cpp — the halo wire-format contract (docs/WIRE.md).
//
// Covers every layer of the contract:
//  * the format grammar and the bytes-per-site / bytes-per-link tables
//    (these EXPECTs are the normative numbers the doc's tables cite);
//  * IEEE binary16 software conversion (round-to-nearest-even, overflow,
//    subnormals) behind the fp16 spinor wire;
//  * gauge wire frames: pack_links/unpack_links round trips at every
//    reconstruction scheme, and the corrupt-frame regression — a bit flip
//    in the *encoded* recon-12 bytes must be caught by the encoded-byte
//    checksum and healed by retransmitting the pristine frame, decoding
//    bit-for-bit to the clean answer;
//  * spinor halo round trips through the fused pack/convert kernels on
//    multi-dimension splits and anisotropic grids: fp64 bit-for-bit,
//    fp32/fp16 within the format's error floor;
//  * ksan and dsan stay clean on the fused reduced-precision kernels;
//  * the reliable-update sharded CG: reduced-wire solves are certified and
//    land on the fp64 answer, and the fp64 wire leaves the trajectory
//    bit-for-bit untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "multidev/runner.hpp"
#include "multidev/sharded_cg.hpp"
#include "multidev/wire_format.hpp"
#include "su3/random_su3.hpp"

namespace milc::multidev {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Grammar and byte tables
// ---------------------------------------------------------------------------

TEST(WireFormat, GrammarRoundTrips) {
  const char* specs[] = {"fp64",     "fp32",     "fp16",     "fp64+r12", "fp64+r9",
                         "fp32+r12", "fp32+r9",  "fp16+r12", "fp16+r9",  "fp64+r18",
                         "fp32+r18", "fp16+r18"};
  for (const char* spec : specs) {
    WireFormat w;
    ASSERT_TRUE(parse_wire_format(spec, w)) << spec;
    WireFormat again;
    ASSERT_TRUE(parse_wire_format(to_string(w), again)) << to_string(w);
    EXPECT_EQ(w, again) << spec;
  }
  // "+r18" is the explicit spelling of the uncompressed default and prints
  // back without the suffix.
  WireFormat w;
  ASSERT_TRUE(parse_wire_format("fp32+r18", w));
  EXPECT_EQ(to_string(w), "fp32");
}

TEST(WireFormat, GrammarRejectsNonsense) {
  WireFormat w;
  EXPECT_FALSE(parse_wire_format("", w));
  EXPECT_FALSE(parse_wire_format("bogus", w));
  EXPECT_FALSE(parse_wire_format("fp8", w));
  EXPECT_FALSE(parse_wire_format("fp32+r7", w));
  EXPECT_FALSE(parse_wire_format("fp32+", w));
  EXPECT_FALSE(parse_wire_format("fp32+r12x", w));
}

TEST(WireFormat, DefaultIsExactFp64) {
  WireFormat w{};
  EXPECT_EQ(w.spinor, SpinorWire::fp64);
  EXPECT_EQ(w.gauge, Reconstruct::k18);
  EXPECT_FALSE(w.reduced());
  EXPECT_EQ(to_string(w), "fp64");
  EXPECT_EQ(wire_prec_field(w), "fp64");
  EXPECT_EQ(wire_recon_field(w), "-");  // tune-key default, old caches replay
  ASSERT_TRUE(parse_wire_format("fp32+r12", w));
  EXPECT_TRUE(w.reduced());
  EXPECT_EQ(wire_recon_field(w), "recon-12");
}

// The normative bytes-per-site / bytes-per-link tables of docs/WIRE.md §1.
TEST(WireFormat, BytesPerSiteTable) {
  EXPECT_EQ(spinor_site_bytes(SpinorWire::fp64), 48);  // 3 complex x 2 x 8 B
  EXPECT_EQ(spinor_site_bytes(SpinorWire::fp32), 24);  // 3 complex x 2 x 4 B
  EXPECT_EQ(spinor_site_bytes(SpinorWire::fp16), 12);  // 3 complex x 2 x 2 B
  EXPECT_EQ(gauge_link_bytes(Reconstruct::k18), 144);  // 18 reals x 8 B
  EXPECT_EQ(gauge_link_bytes(Reconstruct::k12), 96);   // 12 reals x 8 B
  EXPECT_EQ(gauge_link_bytes(Reconstruct::k9), 72);    //  9 reals x 8 B
}

TEST(WireFormat, HaloMessageBytesFollowTheFormat) {
  const LatticeGeom geom(12);
  const Partitioner part(geom, PartitionGrid{.devices = {1, 1, 2, 2}}, Parity::Even);
  for (const Shard& sh : part.shards()) {
    std::int64_t total_fp64 = 0, total_fp16 = 0;
    for (const HaloMsg& msg : sh.halo) {
      EXPECT_EQ(msg.wire_bytes(SpinorWire::fp64), msg.bytes());
      EXPECT_EQ(msg.wire_bytes(SpinorWire::fp32), msg.count() * 24);
      EXPECT_EQ(msg.wire_bytes(SpinorWire::fp16), msg.count() * 12);
      total_fp64 += msg.wire_bytes(SpinorWire::fp64);
      total_fp16 += msg.wire_bytes(SpinorWire::fp16);
    }
    EXPECT_EQ(sh.halo_wire_bytes(SpinorWire::fp64), total_fp64);
    EXPECT_EQ(sh.halo_wire_bytes(SpinorWire::fp16), total_fp16);
    EXPECT_EQ(sh.halo_wire_bytes(SpinorWire::fp64),
              4 * sh.halo_wire_bytes(SpinorWire::fp16));
  }
}

// ---------------------------------------------------------------------------
// IEEE binary16 software conversion (the fp16 wire's codec)
// ---------------------------------------------------------------------------

TEST(HalfConversion, ExactForRepresentableValues) {
  const double exact[] = {0.0,    1.0,   -1.0,     0.5,    -2.25,  1024.0,
                          0.125,  -0.375, 1.0 / 1024.0, 65504.0, -65504.0};
  for (const double v : exact) {
    EXPECT_EQ(half_to_float(float_to_half(static_cast<float>(v))),
              static_cast<float>(v))
        << v;
  }
}

TEST(HalfConversion, RoundsToNearestEven) {
  // 2049/2048 sits exactly between 1.0 and 1.0 + 2^-10: ties to even (1.0).
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.0p-11f)), 1.0f);
  // One ULP above the tie rounds up to the next representable half.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.8p-11f)), 1.0f + 0x1.0p-10f);
}

TEST(HalfConversion, OverflowAndSubnormals) {
  // Values beyond the binary16 range saturate to infinity.
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1.0e5f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1.0e5f))));
  // The smallest binary16 subnormal round-trips; below half of it flushes
  // to (signed) zero.
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-24f)), 0x1.0p-24f);
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-26f)), 0.0f);
}

TEST(HalfConversion, RelativeErrorWithinHalfUlp) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_signed();  // |v| < 1, well inside half range
    const double back = half_to_float(float_to_half(static_cast<float>(v)));
    EXPECT_LE(std::abs(back - v), std::abs(v) * 0x1.0p-11 + 0x1.0p-25) << v;
  }
}

// ---------------------------------------------------------------------------
// Gauge wire frames (pack_links / unpack_links, docs/WIRE.md §3)
// ---------------------------------------------------------------------------

std::vector<SU3Matrix<dcomplex>> random_links(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SU3Matrix<dcomplex>> links(static_cast<std::size_t>(n));
  for (auto& u : links) u = random_su3(rng);
  return links;
}

TEST(GaugeWire, Recon18FrameIsBitExact) {
  const auto links = random_links(32, 11);
  std::vector<double> frame(links.size() * 18);
  pack_links(Reconstruct::k18, links, frame);
  std::vector<SU3Matrix<dcomplex>> out(links.size());
  unpack_links(Reconstruct::k18, frame, out);
  EXPECT_EQ(std::memcmp(links.data(), out.data(), links.size() * sizeof(links[0])), 0);
}

TEST(GaugeWire, ReducedFramesReconstructWithinRounding) {
  for (const Reconstruct r : {Reconstruct::k12, Reconstruct::k9}) {
    const auto links = random_links(32, 13);
    std::vector<double> frame(links.size() * static_cast<std::size_t>(reals_per_link(r)));
    pack_links(r, links, frame);
    std::vector<SU3Matrix<dcomplex>> out(links.size());
    unpack_links(r, frame, out);
    for (std::size_t i = 0; i < links.size(); ++i) {
      for (int row = 0; row < kColors; ++row) {
        for (int col = 0; col < kColors; ++col) {
          EXPECT_NEAR(out[i].e[row][col].re, links[i].e[row][col].re, 1e-12);
          EXPECT_NEAR(out[i].e[row][col].im, links[i].e[row][col].im, 1e-12);
        }
      }
    }
  }
}

// The faultsim regression behind run_attempt's corruption handling: the bit
// flip lands in the *encoded* wire bytes of a compressed recon-12 frame, the
// checksum — also taken over encoded bytes — rejects the delivery, and the
// retransmitted pristine frame decodes bit-for-bit to the clean answer.
TEST(GaugeWire, CorruptRecon12FrameIsRejectedAndRetransmitBitExact) {
  const auto links = random_links(48, 17);
  std::vector<double> frame(links.size() * 12);
  pack_links(Reconstruct::k12, links, frame);
  const std::uint64_t sum = fnv1a(frame.data(), frame.size() * sizeof(double));

  // Clean decode: the oracle the retransmission must reproduce.
  std::vector<SU3Matrix<dcomplex>> clean(links.size());
  unpack_links(Reconstruct::k12, frame, clean);

  // Delivery 1: one bit flipped somewhere in the compressed payload.
  std::vector<double> rx = frame;
  faultsim::flip_bit(rx.data(), rx.size() * sizeof(double), /*key=*/0xdecafbad);
  EXPECT_NE(fnv1a(rx.data(), rx.size() * sizeof(double)), sum)
      << "the encoded-byte checksum must see the flip";

  // Delivery 2 (retransmission): pristine bytes, accepted, decoded.
  std::vector<double> rx2 = frame;
  ASSERT_EQ(fnv1a(rx2.data(), rx2.size() * sizeof(double)), sum);
  std::vector<SU3Matrix<dcomplex>> healed(links.size());
  unpack_links(Reconstruct::k12, rx2, healed);
  EXPECT_EQ(std::memcmp(clean.data(), healed.data(), clean.size() * sizeof(clean[0])), 0);
}

// ---------------------------------------------------------------------------
// Spinor halo round trips through the fused pack/convert kernels
// ---------------------------------------------------------------------------

/// Largest |multi(wire) - single(exact)| for one Dslash on this wire
/// (mirrors the ABFT floors in sharded_cg.cpp and bench_scaling --wire).
double wire_floor(SpinorWire w) {
  switch (w) {
    case SpinorWire::fp64: return 0.0;
    case SpinorWire::fp32: return 1e-5;
    case SpinorWire::fp16: return 5e-2;
  }
  return 0.0;
}

void expect_halo_round_trip(const Coords& dims, const PartitionGrid& grid,
                            const WireFormat& fmt) {
  const DslashRunner single;
  const MultiDeviceRunner multi;
  DslashProblem exact(dims, 2024);
  single.run_functional(exact, Strategy::LP3_1, IndexOrder::kMajor, 768);

  DslashProblem problem(dims, 2024);
  multi.run_functional(problem, grid, Strategy::LP3_1, IndexOrder::kMajor, 768, fmt);
  const double diff = max_abs_diff(exact.c(), problem.c());
  if (fmt.reduced()) {
    EXPECT_LE(diff, wire_floor(fmt.spinor))
        << to_string(fmt) << " on " << grid.label();
  } else {
    EXPECT_EQ(diff, 0.0) << to_string(fmt) << " on " << grid.label();
  }
}

TEST(SpinorWire, MultiDimSplitRoundTrips) {
  for (const char* spec : {"fp64", "fp32+r12", "fp16+r9"}) {
    WireFormat fmt;
    ASSERT_TRUE(parse_wire_format(spec, fmt));
    expect_halo_round_trip(Coords{12, 12, 12, 12},
                           PartitionGrid{.devices = {1, 1, 2, 2}}, fmt);
  }
}

TEST(SpinorWire, AnisotropicGridRoundTrips) {
  for (const char* spec : {"fp64", "fp32", "fp16"}) {
    WireFormat fmt;
    ASSERT_TRUE(parse_wire_format(spec, fmt));
    // Unequal extents and a depth-3 face on the short z dimension.
    expect_halo_round_trip(Coords{12, 12, 12, 24},
                           PartitionGrid{.devices = {1, 1, 2, 2}}, fmt);
  }
}

TEST(SpinorWire, EightWaySplitRoundTrips) {
  WireFormat fmt;
  ASSERT_TRUE(parse_wire_format("fp32+r12", fmt));
  expect_halo_round_trip(Coords{12, 12, 12, 12},
                         PartitionGrid{.devices = {1, 2, 2, 2}}, fmt);
}

TEST(SpinorWire, Fp64WireIsBitForBitTheDefaultRun) {
  const MultiDeviceRunner multi;
  const PartitionGrid grid{.devices = {1, 1, 2, 2}};
  DslashProblem base(12, 2024);
  multi.run_functional(base, grid, Strategy::LP3_1, IndexOrder::kMajor, 768);
  DslashProblem explicit_fp64(12, 2024);
  multi.run_functional(explicit_fp64, grid, Strategy::LP3_1, IndexOrder::kMajor, 768,
                       WireFormat{});
  EXPECT_EQ(max_abs_diff(base.c(), explicit_fp64.c()), 0.0);
}

// ---------------------------------------------------------------------------
// Sanitizers over the fused reduced-precision kernels
// ---------------------------------------------------------------------------

TEST(SpinorWire, KsanCleanOnReducedFormats) {
  const MultiDeviceRunner multi;
  for (const char* spec : {"fp32+r12", "fp16+r9"}) {
    WireFormat fmt;
    ASSERT_TRUE(parse_wire_format(spec, fmt));
    DslashProblem problem(12, 2024);
    for (const ksan::SanitizerReport& rep :
         multi.sanitize_halo(problem, PartitionGrid::along(3, 2), 96, fmt)) {
      EXPECT_TRUE(rep.clean()) << spec << ": " << rep.summary();
      EXPECT_GT(rep.checked_global, 0u) << rep.kernel;
    }
    DslashProblem px(12, 2024);
    for (const ksan::SanitizerReport& rep :
         multi.sanitize_exchange(px, PartitionGrid::along(3, 2), 96, fmt)) {
      EXPECT_TRUE(rep.clean()) << spec << ": " << rep.summary();
    }
  }
}

TEST(SpinorWire, DsanCleanOnReducedWire) {
  const MultiDeviceRunner multi;
  WireFormat fmt;
  ASSERT_TRUE(parse_wire_format("fp32+r12", fmt));
  DslashProblem problem(12, 2024);
  MultiDevRequest mreq;
  mreq.grid = PartitionGrid{.devices = {1, 1, 2, 2}};
  mreq.req = RunRequest{.strategy = Strategy::LP3_1,
                        .order = IndexOrder::kMajor,
                        .local_size = 768,
                        .variant = Variant::SYCL};
  mreq.wire = fmt;
  for (const ksan::SanitizerReport& rep : multi.dsan_check(problem, mreq)) {
    EXPECT_TRUE(rep.clean()) << rep.summary();
  }
}

// ---------------------------------------------------------------------------
// Reliable-update sharded CG (docs/WIRE.md §5)
// ---------------------------------------------------------------------------

TEST(WireCg, ReducedWireSolvesAreCertifiedAndLandOnTheFp64Answer) {
  const Coords dims{8, 8, 8, 12};
  ShardedCgConfig cfg;
  cfg.cg.rel_tol = 1e-8;
  cfg.cg.max_iterations = 800;

  ShardedCgSolver ref_solver(dims, 2024, 0.5, PartitionGrid::along(3, 2), cfg);
  ColorField b(ref_solver.geom(), Parity::Even);
  b.fill_random(0x5eedULL);
  ColorField x_ref(ref_solver.geom(), Parity::Even);
  const ShardedCgResult ref = ref_solver.solve(b, x_ref);
  ASSERT_TRUE(ref.cg.converged);
  EXPECT_TRUE(ref.certified);
  EXPECT_EQ(ref.reliable_updates, 0);  // exact wire: no replacements

  double x_scale = 0.0;
  for (std::int64_t s = 0; s < x_ref.size(); ++s) {
    for (int c = 0; c < kColors; ++c) {
      x_scale = std::max({x_scale, std::abs(x_ref[s][c].re), std::abs(x_ref[s][c].im)});
    }
  }

  for (const char* spec : {"fp32+r12", "fp16+r9"}) {
    WireFormat fmt;
    ASSERT_TRUE(parse_wire_format(spec, fmt));
    ShardedCgConfig wcfg = cfg;
    wcfg.wire = fmt;
    ShardedCgSolver solver(dims, 2024, 0.5, PartitionGrid::along(3, 2), wcfg);
    ColorField x(solver.geom(), Parity::Even);
    const ShardedCgResult res = solver.solve(b, x);
    EXPECT_TRUE(res.cg.converged) << spec;
    EXPECT_TRUE(res.certified) << spec << ": " << res.summary();
    EXPECT_GT(res.reliable_updates, 0) << spec;
    // Certification pins the exact-wire true residual under rel_tol, so the
    // solution error is O(cond * rel_tol) regardless of the wire format.
    EXPECT_LE(max_abs_diff(x_ref, x), 1e-4 * x_scale) << spec;
  }
}

TEST(WireCg, Fp64WireLeavesTheTrajectoryBitForBit) {
  const Coords dims{8, 8, 8, 12};
  ShardedCgConfig cfg;
  cfg.cg.rel_tol = 1e-8;
  cfg.cg.max_iterations = 400;

  ShardedCgSolver base_solver(dims, 2024, 0.5, PartitionGrid::along(3, 2), cfg);
  ColorField b(base_solver.geom(), Parity::Even);
  b.fill_random(0x5eedULL);
  ColorField x_base(base_solver.geom(), Parity::Even);
  const ShardedCgResult base = base_solver.solve(b, x_base);

  ShardedCgConfig fcfg = cfg;
  ASSERT_TRUE(parse_wire_format("fp64", fcfg.wire));
  ShardedCgSolver fp64_solver(dims, 2024, 0.5, PartitionGrid::along(3, 2), fcfg);
  ColorField x_fp64(fp64_solver.geom(), Parity::Even);
  const ShardedCgResult res = fp64_solver.solve(b, x_fp64);

  ASSERT_TRUE(base.cg.converged);
  ASSERT_TRUE(res.cg.converged);
  EXPECT_EQ(res.cg.iterations, base.cg.iterations);
  EXPECT_EQ(res.reliable_updates, 0);
  EXPECT_EQ(max_abs_diff(x_base, x_fp64), 0.0);
}

}  // namespace
}  // namespace milc::multidev
