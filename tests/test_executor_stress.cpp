// Executor stress tests: nested divergence, many phases, cross-warp local
// memory, masked atomics, full-size groups, multi-wave grids — and the
// invariant that profiled execution computes exactly the same values as
// functional execution.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "minisycl/executor.hpp"

namespace minisycl {
namespace {

/// Four-way divergence nested inside a two-way guard; every lane still
/// records positionally aligned events.
struct NestedDivergence {
  static constexpr int kPhases = 1;
  double* out;

  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const int lid = lane.local_id();
    const int path = lid % 4;
    lane.branch(path);
    double v = static_cast<double>(path + 1);
    lane.flops(2);
    // Inner predicated region: only even paths double the value.
    lane.set_masked(path % 2 != 0);
    lane.store(&out[lane.global_id()], v * 2.0);
    lane.set_masked(false);
    lane.converge();
    // Odd paths write the plain value afterwards (still uniform events).
    lane.set_masked(path % 2 == 0);
    lane.store(&out[lane.global_id()], v);
    lane.set_masked(false);
  }
};

TEST(ExecutorStress, NestedDivergenceValuesAndCounters) {
  constexpr int kN = 256;
  std::vector<double> out(kN, -1.0);
  LaunchSpec spec{kN, 64, 0, 1, {}};
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  const auto st = execute_profiled(m, cal, spec, NestedDivergence{out.data()}, "nested");
  for (int i = 0; i < kN; ++i) {
    const int path = i % 4;
    const double expect = path % 2 == 0 ? (path + 1) * 2.0 : path + 1.0;
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], expect) << i;
  }
  EXPECT_EQ(st.counters.divergent_branches, static_cast<std::uint64_t>(kN / 32));
}

/// A 5-phase pipeline through local memory: each phase rotates the group's
/// values by one slot.  Only correct if every phase boundary is a barrier.
struct RotatePipeline {
  static constexpr int kPhases = 5;
  int* out;

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    const int lid = lane.local_id();
    const int n = lane.local_range();
    if (phase == 0) {
      lane.template shared_store<int>(lid, lid);
      return;
    }
    // Read the left neighbour's value, re-store after a shadow slot to keep
    // read/write ordering clean: use double-buffering via offset n.
    const int src = (lid + n - 1) % n;
    const int v = lane.template shared_load<int>(((phase % 2) == 1 ? 0 : n) + src);
    lane.template shared_store<int>(((phase % 2) == 1 ? n : 0) + lid, v);
    if (phase == kPhases - 1) lane.store(&out[lane.global_id()], v);
  }
};

TEST(ExecutorStress, MultiPhaseRotation) {
  constexpr int kLocal = 96;
  constexpr int kN = 4 * kLocal;
  std::vector<int> out(kN, -1);
  LaunchSpec spec{kN, kLocal, 2 * kLocal * static_cast<int>(sizeof(int)), 5, {}};
  execute_functional(spec, RotatePipeline{out.data()});
  // After 4 rotations each item holds the value from 4 slots to the left.
  for (int g = 0; g < kN / kLocal; ++g) {
    for (int t = 0; t < kLocal; ++t) {
      EXPECT_EQ(out[static_cast<std::size_t>(g * kLocal + t)], (t + kLocal - 4) % kLocal);
    }
  }
}

struct MaskedAtomic {
  static constexpr int kPhases = 1;
  double* sum;

  template <typename Lane>
  void operator()(Lane& lane, int) const {
    lane.set_masked(lane.global_id() % 3 != 0);
    lane.atomic_add(sum, 1.0);
    lane.set_masked(false);
  }
};

TEST(ExecutorStress, MaskedAtomicsDontFire) {
  double sum = 0.0;
  LaunchSpec spec{96, 32, 0, 1, {}};
  execute_functional(spec, MaskedAtomic{&sum});
  EXPECT_DOUBLE_EQ(sum, 32.0);  // every third of 96
}

struct SaxpyKernel {
  static constexpr int kPhases = 1;
  const double* x;
  double* y;

  template <typename Lane>
  void operator()(Lane& lane, int) const {
    const auto g = lane.global_id();
    const double xv = lane.load(&x[g]);
    const double yv = lane.load(&y[g]);
    lane.flops(2);
    lane.store(&y[g], 2.0 * xv + yv);
  }
};

TEST(ExecutorStress, ProfiledEqualsFunctionalBitForBit) {
  constexpr int kN = 1024 * 13;  // several groups, partial wave
  std::vector<double> x(kN), y1(kN), y2(kN);
  for (int i = 0; i < kN; ++i) {
    x[static_cast<std::size_t>(i)] = 0.25 * i;
    y1[static_cast<std::size_t>(i)] = y2[static_cast<std::size_t>(i)] = -0.5 * i;
  }
  LaunchSpec spec{kN, 208, 0, 1, {}};  // local size not a power of two
  execute_functional(spec, SaxpyKernel{x.data(), y1.data()});
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  (void)execute_profiled(m, cal, spec, SaxpyKernel{x.data(), y2.data()}, "saxpy");
  EXPECT_EQ(y1, y2);
}

TEST(ExecutorStress, FullSizeGroupAndManyWaves) {
  // 1024-wide groups, more groups than a wave holds.
  constexpr int kLocal = 1024;
  constexpr int kGroups = 300;
  std::vector<double> x(kLocal * kGroups, 1.0), y(kLocal * kGroups, 2.0);
  LaunchSpec spec{kLocal * kGroups, kLocal, 0, 1, {}};
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  const auto st = execute_profiled(m, cal, spec, SaxpyKernel{x.data(), y.data()}, "waves");
  EXPECT_GT(st.occupancy.waves, 1);
  EXPECT_EQ(st.counters.work_items, static_cast<std::uint64_t>(kLocal) * kGroups);
  EXPECT_DOUBLE_EQ(y[123], 4.0);
}

TEST(ExecutorStress, CountersScaleLinearlyWithGrid) {
  std::vector<double> x(8192, 1.0), y(8192, 0.0);
  const gpusim::MachineModel m = gpusim::a100();
  const gpusim::Calibration cal;
  LaunchSpec small{2048, 128, 0, 1, {}};
  LaunchSpec big{8192, 128, 0, 1, {}};
  const auto s1 = execute_profiled(m, cal, small, SaxpyKernel{x.data(), y.data()}, "s");
  const auto s2 = execute_profiled(m, cal, big, SaxpyKernel{x.data(), y.data()}, "b");
  EXPECT_EQ(4 * s1.counters.warps, s2.counters.warps);
  EXPECT_EQ(4 * s1.counters.global_store_ops, s2.counters.global_store_ops);
  EXPECT_EQ(4 * s1.counters.flops, s2.counters.flops);
}

}  // namespace
}  // namespace minisycl
