// Mini-CUDA runtime and the CUDA 3LP-1 port.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "cudacompat/cuda_dslash_3lp1.hpp"

namespace cudacompat {
namespace {

struct BuiltinsProbe {
  static constexpr int kPhases = 1;
  int* tid_out;
  int* bid_out;
  int* bdim_out;

  static minisycl::KernelTraits traits() { return {.name = "probe"}; }

  template <typename Lane>
  void operator()(ThreadCtx<Lane>& ctx, int) const {
    const int g = static_cast<int>(ctx.blockIdx.x * ctx.blockDim.x + ctx.threadIdx.x);
    ctx.store(&tid_out[g], static_cast<int>(ctx.threadIdx.x));
    ctx.store(&bid_out[g], static_cast<int>(ctx.blockIdx.x));
    ctx.store(&bdim_out[g], static_cast<int>(ctx.blockDim.x));
  }
};

TEST(CudaCompat, BuiltinsMatchLaunchGeometry) {
  constexpr int kGrid = 4, kBlock = 64;
  std::vector<int> tid(kGrid * kBlock), bid(kGrid * kBlock), bdim(kGrid * kBlock);
  Stream stream(minisycl::ExecMode::functional);
  stream.launch(dim3(kGrid), dim3(kBlock), 0,
                BuiltinsProbe{tid.data(), bid.data(), bdim.data()});
  for (int g = 0; g < kGrid * kBlock; ++g) {
    EXPECT_EQ(tid[static_cast<std::size_t>(g)], g % kBlock);
    EXPECT_EQ(bid[static_cast<std::size_t>(g)], g / kBlock);
    EXPECT_EQ(bdim[static_cast<std::size_t>(g)], kBlock);
  }
}

TEST(CudaCompat, StreamsAreInOrder) {
  Stream stream(minisycl::ExecMode::functional);
  EXPECT_EQ(stream.queue().order(), minisycl::QueueOrder::in_order);
  EXPECT_LT(stream.queue().launch_overhead_us(),
            gpusim::default_calibration().launch_overhead_out_of_order_us);
}

TEST(CudaCompat, MallocFreeRoundTrip) {
  double* p = cuda_malloc<double>(128);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[127] = 2.0;
  EXPECT_EQ(p[64], 0.0);  // zero-initialised
  cuda_free(p);
}

TEST(CudaDslash, MatchesReference) {
  milc::DslashProblem p(4, 61);
  const auto args = p.args();
  CudaDslash3LP1 kernel{args};

  const unsigned block = 96;
  const unsigned grid = static_cast<unsigned>(p.sites() * 12 / block);
  Stream stream(minisycl::ExecMode::functional);
  stream.launch(dim3(grid), dim3(block), CudaDslash3LP1::shared_bytes(static_cast<int>(block)),
                kernel);

  milc::ColorField ref(p.geom(), p.target_parity());
  milc::dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(milc::max_abs_diff(p.c(), ref), 1e-10);
}

TEST(CudaDslash, ProfiledMatchesSyclKernelStructure) {
  milc::DslashProblem p(4, 62);
  const auto args = p.args();
  CudaDslash3LP1 kernel{args};
  Stream stream(minisycl::ExecMode::profiled);
  const auto st = stream.launch(dim3(static_cast<unsigned>(p.sites() * 12 / 96)), dim3(96),
                                CudaDslash3LP1::shared_bytes(96), kernel, "cuda-3lp1");
  EXPECT_GT(st.duration_us, 0.0);
  EXPECT_EQ(st.launch.num_phases, 2);
  EXPECT_GT(st.counters.shared_wavefronts, 0u);  // uses local memory like 3LP-1
  EXPECT_EQ(st.counters.divergent_branches, 0u);
  EXPECT_EQ(st.name, "cuda-3lp1");
}

TEST(CudaDslash, SourceCorpusContainsTheCanonicalPatterns) {
  const std::string src = kCuda3LP1Source;
  EXPECT_NE(src.find("__global__"), std::string::npos);
  EXPECT_NE(src.find("__shared__"), std::string::npos);
  EXPECT_NE(src.find("__syncthreads()"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x * blockDim.x + threadIdx.x"), std::string::npos);
  EXPECT_NE(src.find("<<<grid, block>>>"), std::string::npos);
  EXPECT_NE(src.find("cudaMalloc"), std::string::npos);
}

}  // namespace
}  // namespace cudacompat
