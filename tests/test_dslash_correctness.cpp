// Every parallel strategy, index order and local size must reproduce the
// serial reference Dslash bit-for-bit up to floating-point reassociation
// (atomic variants change summation order).
#include <gtest/gtest.h>

#include <tuple>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

constexpr double kTol = 1e-10;

/// Shared small problem (L=4) reused across the parameterised sweep.
DslashProblem& small_problem() {
  static DslashProblem p(4, /*seed=*/7);
  return p;
}

ColorField reference_output(DslashProblem& p) {
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  return ref;
}

void poison(ColorField& c) {
  for (std::int64_t s = 0; s < c.size(); ++s) {
    for (int i = 0; i < kColors; ++i) c[s].c[i] = {1.2345e99, -9.8765e99};
  }
}

TEST(DslashReference, GatheredViewMatchesDirectEquationOne) {
  DslashProblem& p = small_problem();
  ColorField via_view = reference_output(p);
  ColorField direct(p.geom(), p.target_parity());
  dslash_from_configuration(p.geom(), p.configuration(), p.target_parity(), p.b(), direct);
  EXPECT_LT(max_abs_diff(via_view, direct), 1e-12);
}

TEST(DslashReference, OutputIsNonTrivial) {
  DslashProblem& p = small_problem();
  ColorField ref = reference_output(p);
  EXPECT_GT(norm2(ref), 1.0);
}

struct Config {
  Strategy strategy;
  IndexOrder order;
  int local_size;
  bool syclcplx;
};

std::ostream& operator<<(std::ostream& os, const Config& c) {
  return os << config_label(c.strategy, c.order, c.local_size)
            << (c.syclcplx ? " syclcplx" : "");
}

class StrategyCorrectness : public ::testing::TestWithParam<Config> {};

TEST_P(StrategyCorrectness, MatchesReference) {
  const Config cfg = GetParam();
  DslashProblem& p = small_problem();
  ASSERT_TRUE(is_valid_local_size(cfg.strategy, cfg.order, cfg.local_size, p.sites()));

  poison(p.c());
  DslashRunner runner;
  runner.run_functional(p, cfg.strategy, cfg.order, cfg.local_size, cfg.syclcplx);

  const ColorField ref = reference_output(p);
  EXPECT_LT(max_abs_diff(p.c(), ref), kTol) << "strategy output diverged from reference";
}

std::vector<Config> all_configs() {
  std::vector<Config> out;
  for (Strategy s : all_strategies()) {
    for (IndexOrder o : orders_of(s)) {
      for (int ls : paper_local_sizes(s, o, small_problem().sites())) {
        out.push_back({s, o, ls, false});
      }
    }
  }
  // SyclCPLX variant of 3LP-1, both orders (paper §IV-C item 1).
  for (IndexOrder o : orders_of(Strategy::LP3_1)) {
    out.push_back({Strategy::LP3_1, o, 96, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyCorrectness, ::testing::ValuesIn(all_configs()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           const Config& c = info.param;
                           std::string n = to_string(c.strategy);
                           n += '_';
                           n += to_string(c.order);
                           n += '_';
                           n += std::to_string(c.local_size);
                           if (c.syclcplx) n += "_cplx";
                           for (char& ch : n) {
                             if (ch == '-') ch = 'm';
                           }
                           return n;
                         });

/// Profiled execution must produce the same field values as functional
/// execution (the tracing lane performs the identical arithmetic).
TEST(ProfiledExecution, SameValuesAsFunctional) {
  DslashProblem& p = small_problem();
  DslashRunner runner;

  poison(p.c());
  runner.run_functional(p, Strategy::LP3_1, IndexOrder::kMajor, 96);
  ColorField functional = p.c();

  poison(p.c());
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  (void)runner.run(p, req);
  EXPECT_LT(max_abs_diff(p.c(), functional), 1e-15);
}

/// A bigger lattice (L=8) spot check on the flagship strategy, to exercise
/// multi-wave scheduling and wrap-around-free third-neighbour hops.
TEST(StrategyCorrectnessLarge, L8_3LP1_768) {
  DslashProblem p(8, /*seed=*/11);
  poison(p.c());
  DslashRunner runner;
  runner.run_functional(p, Strategy::LP3_1, IndexOrder::kMajor, 768);
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(p.c(), ref), kTol);
}

TEST(StrategyCorrectnessLarge, L8_4LP2_96_OddTarget) {
  DslashProblem p(8, /*seed=*/13, Parity::Odd);
  poison(p.c());
  DslashRunner runner;
  runner.run_functional(p, Strategy::LP4_2, IndexOrder::iMajor, 96);
  ColorField ref(p.geom(), p.target_parity());
  dslash_reference(p.view(), p.neighbors(), p.b(), ref);
  EXPECT_LT(max_abs_diff(p.c(), ref), kTol);
}

}  // namespace
}  // namespace milc
