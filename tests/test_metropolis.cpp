// Quenched SU(3) Metropolis: detailed-balance plumbing, unitarity
// preservation, and the plaquette's response to the coupling.
#include <gtest/gtest.h>

#include "lattice/metropolis.hpp"

namespace milc {
namespace {

TEST(Metropolis, OrderedStartStaysNearOneAtWeakCoupling) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) {
      cfg.fat(f, k) = SU3Matrix<dcomplex>::identity();
      cfg.lng(f, k) = SU3Matrix<dcomplex>::identity();
    }
  }
  EXPECT_NEAR(average_plaquette(geom, cfg), 1.0, 1e-12);

  MetropolisOptions opts;
  opts.beta = 12.0;  // very weak coupling: stay ordered
  opts.step = 0.1;
  opts.hits_per_link = 2;
  const SweepStats st = thermalize(geom, cfg, opts, 5);
  EXPECT_GT(st.avg_plaquette, 0.8);
}

TEST(Metropolis, DisorderedStartOrdersAtWeakCoupling) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(42);
  const double plaq0 = average_plaquette(geom, cfg);
  EXPECT_LT(std::abs(plaq0), 0.1);  // random start ~ 0

  MetropolisOptions opts;
  opts.beta = 9.0;
  opts.step = 0.25;
  opts.hits_per_link = 3;
  const SweepStats st = thermalize(geom, cfg, opts, 12);
  EXPECT_GT(st.avg_plaquette, 0.45) << "weak coupling must order the field";
}

TEST(Metropolis, ZeroCouplingStaysDisordered) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(43);
  MetropolisOptions opts;
  opts.beta = 0.0;  // pure randomisation, every proposal accepted
  opts.step = 0.3;
  opts.hits_per_link = 1;
  const SweepStats st = thermalize(geom, cfg, opts, 3);
  EXPECT_NEAR(st.acceptance, 1.0, 1e-12);
  EXPECT_LT(std::abs(st.avg_plaquette), 0.15);
}

TEST(Metropolis, LinksStaySpecialUnitary) {
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(44);
  MetropolisOptions opts;
  opts.beta = 6.0;
  const SweepStats st = thermalize(geom, cfg, opts, 4);
  (void)st;
  double max_defect = 0.0, max_det_err = 0.0;
  for (std::int64_t f = 0; f < geom.volume(); f += 7) {
    for (int k = 0; k < kNdim; ++k) {
      max_defect = std::max(max_defect, unitarity_defect(cfg.fat(f, k)));
      const dcomplex d = det(cfg.fat(f, k));
      max_det_err = std::max(max_det_err, std::abs(d.re - 1.0) + std::abs(d.im));
    }
  }
  EXPECT_LT(max_defect, 1e-10);
  EXPECT_LT(max_det_err, 1e-10);
}

TEST(Metropolis, AcceptanceFallsWithCoupling) {
  LatticeGeom geom(4);
  GaugeConfiguration a(geom), b(geom);
  a.fill_random(45);
  b.fill_random(45);
  MetropolisOptions weak;
  weak.beta = 1.0;
  weak.step = 0.3;
  MetropolisOptions strong = weak;
  strong.beta = 12.0;
  const SweepStats sw = metropolis_sweep(geom, a, weak, 0);
  const SweepStats ss = metropolis_sweep(geom, b, strong, 0);
  EXPECT_GT(sw.acceptance, ss.acceptance);
  EXPECT_GT(ss.acceptance, 0.0);
}

TEST(Metropolis, DeterministicGivenSeed) {
  LatticeGeom geom(4);
  GaugeConfiguration a(geom), b(geom);
  a.fill_random(46);
  b.fill_random(46);
  MetropolisOptions opts;
  opts.seed = 99;
  const SweepStats s1 = metropolis_sweep(geom, a, opts, 3);
  const SweepStats s2 = metropolis_sweep(geom, b, opts, 3);
  EXPECT_EQ(s1.avg_plaquette, s2.avg_plaquette);
  EXPECT_EQ(s1.acceptance, s2.acceptance);
}

TEST(Metropolis, ThermalizedFieldStillDrivesDslash) {
  // A generated (correlated) configuration must behave like any other gauge
  // field for the operator: here just sanity via the plaquette example path.
  LatticeGeom geom(4);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(47);
  MetropolisOptions opts;
  opts.beta = 6.0;
  thermalize(geom, cfg, opts, 2);
  GaugeView view(geom, cfg, Parity::Even);
  // Fat links in the view must match the updated configuration.
  EXPECT_LT(max_abs_diff(view.link(0, 0, 0), cfg.fat(geom.full_index_of(Parity::Even, 0), 0)),
            1e-15);
}

}  // namespace
}  // namespace milc
