// The cluster-wide tuning cache: key grammar, bit-for-bit persistence,
// deterministic merge, the unified candidate ladder, the explorer's
// determinism contract, the session protocol (including the honesty rule)
// and the warm-start integrations in DslashRunner / choose_grid, plus the
// faultsim cache_fault fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "faultsim/faultsim.hpp"
#include "gpusim/fabric.hpp"
#include "multidev/partition.hpp"
#include "tune/candidates.hpp"
#include "tune/explorer.hpp"
#include "tune/session.hpp"
#include "tune/tune_cache.hpp"
#include "tune/tune_key.hpp"

namespace milc::tune {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

TuneKey sample_key(const std::string& config = "3LP-1 sycl") {
  TuneKey key;
  key.arch = "a100-test";
  key.geom = "4x4x4x8/even";
  key.kernel = "dslash";
  key.config = config;
  key.recon = "r18";
  key.devices = 2;
  key.topo = "1x2";
  return key;
}

TuneEntry sample_entry() {
  TuneEntry e;
  e.local_size = 768;
  e.order = "k-major";
  e.grid = "1x1x1x2";
  e.applies_per_checkpoint = 8;
  e.per_iter_us = 1.0 / 3.0;  // no exact decimal representation
  e.bench = "test_tune";
  e.seed = 42;
  e.stamp = 7;
  return e;
}

// --- key grammar -----------------------------------------------------------

TEST(TuneKey, CanonicalRoundTrips) {
  const TuneKey key = sample_key();
  const std::string canon = key.canonical();
  EXPECT_EQ(canon, "a100-test|4x4x4x8/even|dslash|3LP-1 sycl|fp64|r18|dev2|1x2");
  TuneKey parsed;
  ASSERT_TRUE(TuneKey::parse(canon, parsed));
  EXPECT_EQ(parsed, key);
}

TEST(TuneKey, SeparatorInFieldIsRejected) {
  TuneKey key = sample_key();
  key.config = "has|separator";
  EXPECT_THROW((void)key.canonical(), std::invalid_argument);
}

TEST(TuneKey, MalformedCanonicalFails) {
  TuneKey out;
  EXPECT_FALSE(TuneKey::parse("", out));
  EXPECT_FALSE(TuneKey::parse("a|b|c", out));
  EXPECT_FALSE(TuneKey::parse("a|g|k|c|p|r|devX|t", out));
}

// --- persistence -----------------------------------------------------------

TEST(TuneCachePersist, SerializeRoundTripIsBitForBit) {
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  TuneCache reloaded;
  const auto res = reloaded.deserialize(cache.serialize());
  ASSERT_TRUE(res.ok()) << res.diagnostic;
  EXPECT_EQ(res.entries_loaded, 1u);
  ASSERT_TRUE(reloaded == cache);
  const TuneEntry* e = reloaded.find(sample_key());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(bits_of(e->per_iter_us), bits_of(sample_entry().per_iter_us));
}

TEST(TuneCachePersist, PerIterBitsAreAuthoritative) {
  // Corrupt only the decimal field; the hex bit pattern must win on load.
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  std::string doc = cache.serialize();
  const auto at = doc.find("\"per_iter_us\": ");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::strlen("\"per_iter_us\": 0."), "\"per_iter_us\": 9.");
  TuneCache reloaded;
  ASSERT_TRUE(reloaded.deserialize(doc).ok());
  EXPECT_EQ(bits_of(reloaded.find(sample_key())->per_iter_us),
            bits_of(sample_entry().per_iter_us));
}

TEST(TuneCachePersist, CorruptDocumentIsRejected) {
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  const auto res = cache.deserialize("{\"this is\": not json");
  EXPECT_EQ(res.status, TuneCache::LoadStatus::parse_error);
  EXPECT_FALSE(res.diagnostic.empty());
  EXPECT_EQ(cache.size(), 1u) << "a rejected load must leave the cache untouched";
}

TEST(TuneCachePersist, TruncatedDocumentIsRejected) {
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  const std::string doc = cache.serialize();
  const auto res = TuneCache{}.deserialize(doc.substr(0, doc.size() / 2));
  EXPECT_EQ(res.status, TuneCache::LoadStatus::parse_error);
}

TEST(TuneCachePersist, SchemaMismatchIsRejected) {
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  std::string doc = cache.serialize();
  const auto at = doc.find("\"schema_version\": 1");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::strlen("\"schema_version\": 1"), "\"schema_version\": 999");
  const auto res = TuneCache{}.deserialize(doc);
  EXPECT_EQ(res.status, TuneCache::LoadStatus::schema_mismatch);
}

TEST(TuneCachePersist, MalformedEntryIsRejected) {
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  std::string doc = cache.serialize();
  const auto at = doc.find("\"per_iter_bits\"");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::strlen("\"per_iter_bits\""), "\"wrong_field__\"");
  const auto res = TuneCache{}.deserialize(doc);
  EXPECT_EQ(res.status, TuneCache::LoadStatus::bad_entry);
}

TEST(TuneCachePersist, MissingFileIsIoError) {
  TuneCache cache;
  EXPECT_EQ(cache.load("does_not_exist_test_tune.json").status,
            TuneCache::LoadStatus::io_error);
}

TEST(TuneCachePersist, SaveLoadRoundTrip) {
  const std::string path = "test_tune_roundtrip.json";
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  std::string err;
  ASSERT_TRUE(cache.save(path, &err)) << err;
  TuneCache reloaded;
  ASSERT_TRUE(reloaded.load(path).ok());
  EXPECT_TRUE(reloaded == cache);
  std::remove(path.c_str());
}

// --- merge -----------------------------------------------------------------

TEST(TuneCacheMerge, LastWriterWinsByStamp) {
  TuneEntry older = sample_entry();
  TuneEntry newer = sample_entry();
  newer.local_size = 384;
  newer.stamp = older.stamp + 1;

  TuneCache a, b;
  a.put(sample_key(), older);
  b.put(sample_key(), newer);

  TuneCache ab = a;
  ab.merge(b);
  TuneCache ba = b;
  ba.merge(a);
  EXPECT_EQ(*ab.find(sample_key()), newer);
  EXPECT_TRUE(ab == ba) << "merge outcome must be independent of merge order";
}

TEST(TuneCacheMerge, StampTiesAreOrderIndependent) {
  TuneEntry x = sample_entry();
  TuneEntry y = sample_entry();
  y.bench = "zz-later-bench";  // same stamp, lexicographically larger rank

  TuneCache a, b;
  a.put(sample_key(), x);
  b.put(sample_key(), y);
  TuneCache ab = a;
  ab.merge(b);
  TuneCache ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.find(sample_key())->bench, "zz-later-bench");
}

TEST(TuneCacheMerge, DisjointKeysUnion) {
  TuneCache a, b;
  a.put(sample_key("cfg-a"), sample_entry());
  b.put(sample_key("cfg-b"), sample_entry());
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

// --- unified candidate enumeration -----------------------------------------

TEST(Candidates, PreferredSurvivesWhenValid) {
  EXPECT_EQ(pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 1024), 768);
}

TEST(Candidates, LadderLeadsWithLargestPaperPoolEntry) {
  const auto pool = paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, 1024);
  ASSERT_FALSE(pool.empty());
  const auto ladder = local_size_ladder(Strategy::LP3_1, IndexOrder::kMajor, 1024);
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front(), pool.back());
}

TEST(Candidates, EveryLadderEntryIsAlgorithmicallyValid) {
  for (const std::int64_t sites : {40, 81, 1024, 1296}) {
    const auto ladder = local_size_ladder(Strategy::LP3_1, IndexOrder::kMajor, sites);
    for (const int ls : ladder) {
      EXPECT_TRUE(
          is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, ls, sites, /*warp_size=*/1))
          << ls << " on " << sites << " sites";
    }
    // No duplicates — the ladder is a preference order, not a multiset.
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      for (std::size_t j = i + 1; j < ladder.size(); ++j) {
        EXPECT_NE(ladder[i], ladder[j]);
      }
    }
  }
}

TEST(Candidates, PartialWarpRescueCoversWarpFreeRanges) {
  // 1296 = 2^4 * 3^4 target sites under 3LP k-major: the global range
  // (3 * 1296) has no multiple-of-32 divisor that also divides it into
  // whole groups, so only the warp-free rung can supply candidates.
  const auto ladder = local_size_ladder(Strategy::LP3_1, IndexOrder::kMajor, 1296);
  ASSERT_FALSE(ladder.empty());
  const int picked = pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 1296);
  EXPECT_EQ(picked, ladder.front());
  EXPECT_TRUE(is_valid_local_size(Strategy::LP3_1, IndexOrder::kMajor, picked, 1296,
                                  /*warp_size=*/1));
}

TEST(Candidates, EmptyRangeThrows) {
  EXPECT_THROW((void)pick_local_size(Strategy::LP3_1, IndexOrder::kMajor, 768, 0),
               std::invalid_argument);
  EXPECT_TRUE(local_size_ladder(Strategy::LP3_1, IndexOrder::kMajor, 0).empty());
}

TEST(Candidates, QudaPoolIsPowerOfTwoDivisors) {
  EXPECT_EQ(quda_tuning_candidates(4096), (std::vector<int>{64, 128, 256, 512, 1024}));
  EXPECT_EQ(quda_tuning_candidates(192), (std::vector<int>{64}));
  EXPECT_TRUE(quda_tuning_candidates(100).empty());
  EXPECT_TRUE(quda_tuning_candidates(0).empty());
}

// --- explorer --------------------------------------------------------------

std::vector<Candidate> three_candidates() {
  std::vector<Candidate> cs(3);
  cs[0].local_size = 96;
  cs[1].local_size = 192;
  cs[2].local_size = 384;
  return cs;
}

TEST(Explorer, ArgminWithFirstEnumeratedTieBreak) {
  std::vector<int> priced_order;
  const PriceFn price = [&](const Candidate& c) {
    priced_order.push_back(c.local_size);
    return c.local_size == 96 ? 2.0 : 1.0;  // 192 and 384 tie at 1.0
  };
  const ExploreResult res = explore(three_candidates(), price);
  EXPECT_EQ(res.winner.local_size, 192) << "strict < keeps the first-enumerated winner";
  EXPECT_EQ(res.candidates_tried, 3);
  EXPECT_EQ(priced_order, (std::vector<int>{96, 192, 384}));
}

TEST(Explorer, InfeasibleCandidatesAreSkipped) {
  const PriceFn price = [](const Candidate& c) -> double {
    if (c.local_size != 384) throw std::invalid_argument("does not fit");
    return 5.0;
  };
  const ExploreResult res = explore(three_candidates(), price);
  EXPECT_EQ(res.winner.local_size, 384);
  EXPECT_EQ(res.candidates_tried, 1);
}

TEST(Explorer, NoFeasibleCandidateThrows) {
  const PriceFn reject = [](const Candidate&) -> double {
    throw std::invalid_argument("never fits");
  };
  EXPECT_THROW((void)explore(three_candidates(), reject), std::invalid_argument);
  EXPECT_THROW((void)explore({}, reject), std::invalid_argument);
}

// --- session protocol ------------------------------------------------------

TEST(Session, OffByDefault) { EXPECT_EQ(TuneSession::current(), nullptr); }

TEST(Session, ScopedInstallUninstalls) {
  {
    ScopedTuneSession scoped;
    EXPECT_NE(TuneSession::current(), nullptr);
  }
  EXPECT_EQ(TuneSession::current(), nullptr);
}

TEST(Session, RecordStampsProvenanceAndLookupCounts) {
  ScopedTuneSession scoped({}, Provenance{"unit", 11, 99});
  TuneSession& sess = scoped.session();
  EXPECT_EQ(sess.lookup(sample_key()), nullptr);
  TuneEntry e = sample_entry();
  e.bench = "overwritten";
  sess.record(sample_key(), e);
  const TuneEntry* hit = sess.lookup(sample_key());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bench, "unit");
  EXPECT_EQ(hit->seed, 11u);
  EXPECT_EQ(hit->stamp, 99u);
  EXPECT_EQ(sess.stats().misses, 1u);
  EXPECT_EQ(sess.stats().hits, 1u);
  EXPECT_EQ(sess.stats().stores, 1u);
}

TEST(Session, VerifyEnforcesBitForBitEquality) {
  ScopedTuneSession scoped;
  const TuneEntry e = sample_entry();
  scoped.session().verify(sample_key(), e, e.per_iter_us);  // equal bits: passes
  EXPECT_EQ(scoped.session().stats().replays_verified, 1u);
  double nudged = e.per_iter_us;
  std::uint64_t b = bits_of(nudged);
  b ^= 1ull;  // lowest mantissa bit
  std::memcpy(&nudged, &b, sizeof nudged);
  EXPECT_THROW(scoped.session().verify(sample_key(), e, nudged), ReplayMismatch);
}

TEST(TuneOrReplay, MissExploresAndRecords) {
  ScopedTuneSession scoped({}, Provenance{"unit", 1, 2});
  int calls = 0;
  const PriceFn price = [&](const Candidate& c) {
    ++calls;
    return static_cast<double>(c.local_size);
  };
  const TuneOutcome out = tune_or_replay(sample_key(), three_candidates(), price);
  EXPECT_FALSE(out.from_cache);
  EXPECT_EQ(out.entry.local_size, 96);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(scoped.session().stats().stores, 1u);
  EXPECT_EQ(scoped.session().stats().candidates_explored, 3u);
}

TEST(TuneOrReplay, HitRepricesExactlyOnceAndVerifies) {
  ScopedTuneSession scoped;
  const PriceFn price = [](const Candidate& c) { return static_cast<double>(c.local_size); };
  (void)tune_or_replay(sample_key(), three_candidates(), price);
  scoped.session().reset_stats();

  int calls = 0;
  const PriceFn counting = [&](const Candidate& c) {
    ++calls;
    return static_cast<double>(c.local_size);
  };
  const TuneOutcome warm = tune_or_replay(sample_key(), three_candidates(), counting);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.candidates_tried, 1);
  EXPECT_EQ(calls, 1) << "a hit prices only the cached configuration";
  EXPECT_EQ(scoped.session().stats().replays_verified, 1u);
  EXPECT_EQ(scoped.session().stats().candidates_explored, 0u);
}

TEST(TuneOrReplay, ForgedEntryRaisesReplayMismatch) {
  ScopedTuneSession scoped;
  const PriceFn price = [](const Candidate& c) { return static_cast<double>(c.local_size); };
  (void)tune_or_replay(sample_key(), three_candidates(), price);

  TuneEntry forged = *scoped.session().cache().find(sample_key());
  std::uint64_t b = bits_of(forged.per_iter_us);
  b ^= 1ull;
  std::memcpy(&forged.per_iter_us, &b, sizeof forged.per_iter_us);
  scoped.session().cache().put(sample_key(), forged);
  EXPECT_THROW((void)tune_or_replay(sample_key(), three_candidates(), price),
               ReplayMismatch);
}

TEST(TuneOrReplay, NoSessionDegradesToPlainSweep) {
  ASSERT_EQ(TuneSession::current(), nullptr);
  int calls = 0;
  const PriceFn price = [&](const Candidate& c) {
    ++calls;
    return static_cast<double>(c.local_size);
  };
  const TuneOutcome out = tune_or_replay(sample_key(), three_candidates(), price);
  EXPECT_FALSE(out.from_cache);
  EXPECT_EQ(calls, 3);
}

// --- warm-start integrations ----------------------------------------------

TEST(WarmStart, DslashRunnerReplaysBitForBit) {
  const Coords dims{4, 4, 4, 8};
  DslashRunner runner;

  TuneEntry cold_entry;
  double cold_bits_src = 0.0;
  TuneCache persisted;
  {
    ScopedTuneSession scoped({}, Provenance{"test_tune", 1, 1});
    DslashProblem problem(dims, /*gauge_seed=*/31);
    const TunedRunResult cold = runner.run_tuned(problem, Strategy::LP3_1);
    EXPECT_FALSE(cold.from_cache);
    cold_entry = cold.entry;
    cold_bits_src = cold.result.per_iter_us;
    persisted = scoped.session().cache();
  }
  {
    ScopedTuneSession scoped(persisted, Provenance{"test_tune", 1, 2});
    DslashProblem problem(dims, /*gauge_seed=*/31);  // a fresh allocation
    const TunedRunResult warm = runner.run_tuned(problem, Strategy::LP3_1);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_EQ(warm.entry, cold_entry);
    EXPECT_EQ(bits_of(warm.result.per_iter_us), bits_of(cold_bits_src))
        << "replay must be bit-for-bit even from a different heap layout";
    EXPECT_EQ(scoped.session().stats().candidates_explored, 0u);
    EXPECT_EQ(scoped.session().stats().replays_verified, 1u);
  }
}

TEST(WarmStart, DslashRunnerRejectsForgedCache) {
  const Coords dims{4, 4, 4, 8};
  DslashRunner runner;
  ScopedTuneSession scoped;
  DslashProblem problem(dims, /*gauge_seed=*/31);
  (void)runner.run_tuned(problem, Strategy::LP3_1);

  const TuneKey key = runner.tune_key(problem, Strategy::LP3_1);
  TuneEntry forged = *scoped.session().cache().find(key);
  std::uint64_t b = bits_of(forged.per_iter_us);
  b ^= 1ull;
  std::memcpy(&forged.per_iter_us, &b, sizeof forged.per_iter_us);
  scoped.session().cache().put(key, forged);
  EXPECT_THROW((void)runner.run_tuned(problem, Strategy::LP3_1), ReplayMismatch);
}

TEST(WarmStart, ChooseGridConsultsCache) {
  const LatticeGeom geom(12);
  const gpusim::NodeTopology topo = gpusim::cluster(2, 2);

  ScopedTuneSession scoped;
  const multidev::PartitionGrid cold = multidev::choose_grid(geom, topo);
  EXPECT_EQ(scoped.session().stats().stores, 1u);
  scoped.session().reset_stats();

  const multidev::PartitionGrid warm = multidev::choose_grid(geom, topo);
  EXPECT_EQ(warm.label(), cold.label());
  EXPECT_EQ(scoped.session().stats().hits, 1u);
  EXPECT_EQ(scoped.session().stats().candidates_explored, 0u);
  EXPECT_EQ(scoped.session().stats().replays_verified, 1u);
}

// --- faultsim integration --------------------------------------------------

TEST(CacheFault, SeededLoadFaultFallsBackToColdTune) {
  const std::string path = "test_tune_faulted.json";
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  ASSERT_TRUE(cache.save(path));

  {
    faultsim::FaultPlan plan;
    plan.seed = 7;
    plan.p_cache_fault = 1.0;
    faultsim::ScopedFaultInjection fi(plan);
    TuneCache victim;
    const auto res = victim.load(path);
    EXPECT_EQ(res.status, TuneCache::LoadStatus::injected_fault);
    EXPECT_TRUE(victim.empty()) << "an injected fault must leave the cache untouched";
    ASSERT_FALSE(fi.injector().log().empty());
    EXPECT_EQ(fi.injector().log().front().kind, faultsim::FaultKind::cache_fault);

    // The fallback — a cold tune with an empty session — still works and
    // produces the same winner the persisted cache holds.
    ScopedTuneSession scoped;
    const PriceFn price = [](const Candidate& c) { return static_cast<double>(c.local_size); };
    const TuneOutcome cold = tune_or_replay(sample_key(), three_candidates(), price);
    EXPECT_FALSE(cold.from_cache);
    EXPECT_EQ(cold.entry.local_size, 96);
  }

  // Without the injector the very same file loads fine.
  TuneCache reloaded;
  ASSERT_TRUE(reloaded.load(path).ok());
  EXPECT_TRUE(reloaded == cache);
  std::remove(path.c_str());
}

TEST(CacheFault, SeededSaveFaultReportsError) {
  faultsim::FaultPlan plan;
  plan.seed = 7;
  plan.p_cache_fault = 1.0;
  faultsim::ScopedFaultInjection fi(plan);
  TuneCache cache;
  cache.put(sample_key(), sample_entry());
  std::string err;
  EXPECT_FALSE(cache.save("test_tune_never_written.json", &err));
  EXPECT_NE(err.find("injected cache_fault"), std::string::npos);
}

}  // namespace
}  // namespace milc::tune
