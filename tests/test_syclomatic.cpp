// syclomatic-lite translator: rewrite rules, the derived-index signature and
// the optimiser pass, exercised on snippets and on the real 3LP-1 CUDA
// corpus.
#include <gtest/gtest.h>

#include "cudacompat/cuda_dslash_3lp1.hpp"
#include "syclomatic/translator.hpp"

namespace syclomatic {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Translator, ThreadBuiltinsMapXToDim2) {
  const auto t = translate("int a = threadIdx.x; int b = threadIdx.y; int c = threadIdx.z;");
  EXPECT_TRUE(contains(t.source, "item_ct1.get_local_id(2)"));
  EXPECT_TRUE(contains(t.source, "item_ct1.get_local_id(1)"));
  EXPECT_TRUE(contains(t.source, "item_ct1.get_local_id(0)"));
  EXPECT_FALSE(contains(t.source, "threadIdx"));
}

TEST(Translator, EmitsTheDerivedGlobalIdExpression) {
  // This is the exact expression §IV-D6 measures at a 10.0-12.2% penalty.
  const auto t = translate("int global_id = blockIdx.x * blockDim.x + threadIdx.x;");
  EXPECT_TRUE(contains(t.source,
                       "item_ct1.get_local_range(2) * item_ct1.get_group(2) + "
                       "item_ct1.get_local_id(2)"));
}

TEST(Translator, OptimizerRewritesToGetGlobalId) {
  const auto t = translate("int global_id = blockIdx.x * blockDim.x + threadIdx.x;");
  const auto o = optimize_global_id(t.source);
  EXPECT_EQ(o.replacements, 1);
  EXPECT_TRUE(contains(o.source, "item_ct1.get_global_id(2)"));
  EXPECT_FALSE(contains(o.source, "get_local_range(2) * item_ct1.get_group(2)"));
  // Idempotent.
  const auto o2 = optimize_global_id(o.source);
  EXPECT_EQ(o2.replacements, 0);
  EXPECT_EQ(o2.source, o.source);
}

TEST(Translator, SyncthreadsBecomesBarrier) {
  EXPECT_TRUE(contains(translate("__syncthreads();").source, "item_ct1.barrier();"));
  Options opts;
  opts.use_explicit_local_fence = true;  // variation (ii)
  EXPECT_TRUE(contains(translate("__syncthreads();", opts).source,
                       "item_ct1.barrier(sycl::access::fence_space::local_space);"));
}

TEST(Translator, SharedArraysHoistToLocalAccessors) {
  const auto t = translate("__shared__ double2 c[LOCAL_SIZE];");
  ASSERT_EQ(t.local_arrays.size(), 1u);
  EXPECT_EQ(t.local_arrays[0],
            "sycl::local_accessor<double2, 1> c_acc_ct1(sycl::range<1>(LOCAL_SIZE), cgh);");
  EXPECT_TRUE(contains(t.source, "auto c = c_acc_ct1.get_pointer();"));
  ASSERT_EQ(t.warnings.size(), 1u);
  EXPECT_TRUE(contains(t.warnings[0], "DPCT1059"));
}

TEST(Translator, KernelSignatureGainsItemParameter) {
  const auto t = translate("__global__ void k(int *p, int n) { }");
  EXPECT_TRUE(contains(t.source, "void k(int *p, int n,"));
  EXPECT_TRUE(contains(t.source, "const sycl::nd_item<3> &item_ct1)"));
  EXPECT_FALSE(contains(t.source, "__global__"));
}

TEST(Translator, RuntimeApiBecomesUsm) {
  const auto t = translate(
      "CUCHECK(cudaMalloc(&buf, nbytes));\n"
      "CUCHECK(cudaMemcpy(buf, host, nbytes, cudaMemcpyHostToDevice));\n"
      "CUCHECK(cudaFree(buf));");
  EXPECT_TRUE(contains(t.source, "DPCT_CHECK_ERROR(buf = (decltype(buf))sycl::malloc_device("
                                 "nbytes, q_ct1))"));
  EXPECT_TRUE(contains(t.source, "DPCT_CHECK_ERROR(q_ct1.memcpy(buf, host, nbytes).wait())"));
  EXPECT_TRUE(contains(t.source, "DPCT_CHECK_ERROR(sycl::free(buf, q_ct1))"));
}

TEST(Translator, ErrorChecksRemovable) {
  Options opts;
  opts.emit_error_checks = false;  // variation (iii)
  const auto t = translate("CUCHECK(cudaFree(buf));", opts);
  EXPECT_TRUE(contains(t.source, "sycl::free(buf, q_ct1);"));
  EXPECT_FALSE(contains(t.source, "DPCT_CHECK_ERROR"));
}

TEST(Translator, AtomicAddBecomesDpctAtomic) {
  const auto t = translate("atomicAdd(&c[i], v);");
  EXPECT_TRUE(contains(
      t.source,
      "dpct::atomic_fetch_add<sycl::access::address_space::generic_space>(&c[i], v);"));
}

TEST(Translator, LaunchBecomesNdRangeParallelFor) {
  const auto t = translate("kern<<<grid, block>>>(a, b);");
  EXPECT_TRUE(contains(t.source, "q_ct1.submit([&](sycl::handler &cgh)"));
  EXPECT_TRUE(contains(t.source,
                       "sycl::nd_range<3>(sycl::range<3>(1, 1, grid) * "
                       "sycl::range<3>(1, 1, block)"));
  EXPECT_TRUE(contains(t.source, "[=](sycl::nd_item<3> item_ct1) { kern(a, b, item_ct1); }"));
}

TEST(Translator, CreatesInOrderQueue) {
  // The property the paper credits for the 1.5-6.7% advantage (§IV-D6).
  const auto t = translate("int x;");
  EXPECT_TRUE(contains(t.source, "sycl::property::queue::in_order()"));
}

// --------------------------------------------------- the 3LP-1 corpus ------

TEST(TranslatorCorpus, MigratesTheFullCudaDslash) {
  const auto t = translate(cudacompat::kCuda3LP1Source);
  // No CUDA-isms survive.
  for (const char* cuda_ism : {"__global__", "__shared__", "__syncthreads", "threadIdx",
                               "blockIdx", "blockDim", "cudaMalloc", "cudaMemcpy", "cudaFree",
                               "<<<"}) {
    EXPECT_FALSE(contains(t.source, cuda_ism)) << cuda_ism;
  }
  // The derived-index signature is present exactly once (the global_id line).
  const auto o = optimize_global_id(t.source);
  EXPECT_EQ(o.replacements, 1);
  // Local array hoisted, launch migrated, queue in-order.
  EXPECT_EQ(t.local_arrays.size(), 1u);
  EXPECT_TRUE(contains(t.source, "cgh.parallel_for"));
  EXPECT_TRUE(contains(t.source, "in_order"));
}

TEST(TranslatorCorpus, OptimizedCorpusUsesDirectIndexing) {
  const auto t = translate(cudacompat::kCuda3LP1Source);
  const auto o = optimize_global_id(t.source);
  EXPECT_TRUE(contains(o.source, "int global_id = item_ct1.get_global_id(2);"));
}

}  // namespace
}  // namespace syclomatic
