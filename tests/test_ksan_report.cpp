// test_ksan_report.cpp — the report pipeline dsan and the bench sanitize
// modes lean on: dedup_reports (stable kernel ordering, duplicate-site
// collapse), format_reports digests, and the USM leak-at-teardown
// diagnostic with its alloc-site naming.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ksan/leakcheck.hpp"
#include "ksan/report.hpp"
#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"

namespace ksan {
namespace {

SanitizerReport make_report(std::string kernel, Category cat = Category::GlobalRace,
                            std::uint64_t count = 0, std::uint64_t addr = 0,
                            std::string note = {}) {
  SanitizerReport rep;
  rep.kernel = std::move(kernel);
  rep.checked_global = 10;
  rep.counts[static_cast<std::size_t>(cat)] = count;
  for (std::uint64_t i = 0; i < count; ++i) {
    Offence o;
    o.category = cat;
    o.kind = AccessKind::Store;
    o.addr = addr;
    o.size = 8;
    o.note = note;
    rep.records.push_back(std::move(o));
  }
  return rep;
}

TEST(KsanReport, DedupOrdersByKernelNameStably) {
  std::vector<SanitizerReport> in;
  in.push_back(make_report("zeta"));
  in.push_back(make_report("alpha"));
  in.push_back(make_report("midway"));
  const std::vector<SanitizerReport> out = dedup_reports(std::move(in));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kernel, "alpha");
  EXPECT_EQ(out[1].kernel, "midway");
  EXPECT_EQ(out[2].kernel, "zeta");
}

TEST(KsanReport, DedupMergesSameKernelCountsAndCheckedTotals) {
  std::vector<SanitizerReport> in;
  in.push_back(make_report("pack r0->r1", Category::GlobalOOB, 2, 0x1000, "overrun"));
  in.push_back(make_report("pack r0->r1", Category::GlobalRace, 3, 0x2000, "race"));
  in.push_back(make_report("unpack r1->r0"));
  const std::vector<SanitizerReport> out = dedup_reports(std::move(in));
  ASSERT_EQ(out.size(), 2u);
  const SanitizerReport& merged = out[0];
  EXPECT_EQ(merged.kernel, "pack r0->r1");
  EXPECT_EQ(merged.count(Category::GlobalOOB), 2u);
  EXPECT_EQ(merged.count(Category::GlobalRace), 3u);
  EXPECT_EQ(merged.checked_global, 20u);
  // The base report's records arrive as-is; the merged-in report's three
  // identical offences collapse to one.
  EXPECT_EQ(merged.records.size(), 3u);
}

TEST(KsanReport, DedupCollapsesRepeatedOffencesAcrossDuplicateSites) {
  // The same offence (category, kind, addr, size, note) reported by several
  // per-message reports of one site is a single finding after the merge.
  std::vector<SanitizerReport> in;
  in.push_back(make_report("pack r0->r1", Category::GlobalOOB, 1, 0x1000, "overrun"));
  in.push_back(make_report("pack r0->r1", Category::GlobalOOB, 1, 0x1000, "overrun"));
  in.push_back(make_report("pack r0->r1", Category::GlobalOOB, 1, 0x3000, "distinct"));
  const std::vector<SanitizerReport> out = dedup_reports(std::move(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].count(Category::GlobalOOB), 3u) << "counts still sum";
  EXPECT_EQ(out[0].records.size(), 2u) << "but the exact repeat collapses";
}

TEST(KsanReport, DedupHonoursTheRecordCap) {
  std::vector<SanitizerReport> in;
  for (int i = 0; i < 4; ++i) {
    in.push_back(make_report("k", Category::GlobalRace, 1,
                             0x1000 + static_cast<std::uint64_t>(i) * 8, "r"));
  }
  const std::vector<SanitizerReport> out = dedup_reports(std::move(in), /*max_records=*/2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].count(Category::GlobalRace), 4u);
  EXPECT_EQ(out[0].records.size(), 2u);
}

TEST(KsanReport, FormatReportsEmitsOneDigestLinePerReport) {
  std::vector<SanitizerReport> reports;
  reports.push_back(make_report("clean-kernel"));
  reports.push_back(make_report("broken-kernel", Category::CrossDeviceRace, 2));
  reports.push_back(make_report("linty-kernel", Category::ChecksumSkipped, 1));
  const std::string digest = format_reports(reports);
  EXPECT_NE(digest.find("clean-kernel: clean\n"), std::string::npos) << digest;
  EXPECT_NE(digest.find("broken-kernel: 2 errors, 0 lints\n"), std::string::npos) << digest;
  EXPECT_NE(digest.find("linty-kernel: 0 errors, 1 lints\n"), std::string::npos) << digest;
}

TEST(KsanLeak, AllocationOutlivingItsQueueIsReportedWithItsSiteName) {
  std::vector<SanitizerReport> out;
  double* leaked = nullptr;
  {
    minisycl::queue q;
    arm_leak_check(q, out, "leak-zoo");
    leaked = minisycl::malloc_device<double>(64, q, "leaked-scratch");
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].clean()) << out[0].summary();
  EXPECT_EQ(out[0].count(Category::UsmLeak), 1u) << out[0].summary();
  ASSERT_EQ(out[0].records.size(), 1u);
  EXPECT_NE(out[0].records[0].note.find("site 'leaked-scratch'"), std::string::npos)
      << out[0].records[0].note;
  EXPECT_EQ(out[0].records[0].size, 64u * sizeof(double));

  minisycl::queue reaper;
  minisycl::free(leaked, reaper);
}

TEST(KsanLeak, BalancedAllocFreeTearsDownClean) {
  std::vector<SanitizerReport> out;
  {
    minisycl::queue q;
    arm_leak_check(q, out, "balanced");
    double* p = minisycl::malloc_device<double>(32, q, "scratch");
    minisycl::free(p, q);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].clean()) << out[0].summary();
  EXPECT_EQ(out[0].count(Category::UsmLeak), 0u);
}

TEST(KsanLeak, PreexistingAllocationsAreOutsideTheWatchWindow) {
  minisycl::queue owner;
  double* long_lived = minisycl::malloc_device<double>(16, owner, "lattice-field");
  std::vector<SanitizerReport> out;
  {
    minisycl::queue q;
    arm_leak_check(q, out, "windowed");
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].clean())
      << "allocations predating the watch belong to the caller: " << out[0].summary();
  minisycl::free(long_lived, owner);
}

}  // namespace
}  // namespace ksan
