// Lattice geometry, neighbour-table and field-layout tests.
#include <gtest/gtest.h>

#include "lattice/fields.hpp"
#include "lattice/geometry.hpp"
#include "lattice/soa.hpp"

namespace milc {
namespace {

TEST(Geometry, VolumeAndHalfVolume) {
  LatticeGeom g(8);
  EXPECT_EQ(g.volume(), 4096);
  EXPECT_EQ(g.half_volume(), 2048);
  LatticeGeom r(Coords{4, 6, 8, 10});
  EXPECT_EQ(r.volume(), 4 * 6 * 8 * 10);
}

TEST(Geometry, RejectsOddOrTinyExtents) {
  EXPECT_THROW(LatticeGeom(Coords{3, 4, 4, 4}), std::invalid_argument);
  EXPECT_THROW(LatticeGeom(Coords{4, 4, 0, 4}), std::invalid_argument);
}

TEST(Geometry, IndexCoordsRoundTrip) {
  LatticeGeom g(Coords{4, 6, 8, 4});
  for (std::int64_t f = 0; f < g.volume(); ++f) {
    EXPECT_EQ(g.full_index(g.coords(f)), f);
  }
}

TEST(Geometry, XIsFastest) {
  LatticeGeom g(8);
  EXPECT_EQ(g.full_index(Coords{1, 0, 0, 0}), 1);
  EXPECT_EQ(g.full_index(Coords{0, 1, 0, 0}), 8);
  EXPECT_EQ(g.full_index(Coords{0, 0, 1, 0}), 64);
  EXPECT_EQ(g.full_index(Coords{0, 0, 0, 1}), 512);
}

TEST(Geometry, EoIndexIsBijectivePerParity) {
  LatticeGeom g(6);
  std::vector<int> seen_even(static_cast<std::size_t>(g.half_volume()), 0);
  std::vector<int> seen_odd(static_cast<std::size_t>(g.half_volume()), 0);
  for (std::int64_t f = 0; f < g.volume(); ++f) {
    auto& seen = g.parity(f) == Parity::Even ? seen_even : seen_odd;
    ++seen[static_cast<std::size_t>(g.eo_index(f))];
  }
  for (auto v : seen_even) EXPECT_EQ(v, 1);
  for (auto v : seen_odd) EXPECT_EQ(v, 1);
}

TEST(Geometry, FullIndexOfInvertsEoIndex) {
  LatticeGeom g(6);
  for (std::int64_t s = 0; s < g.half_volume(); ++s) {
    for (Parity p : {Parity::Even, Parity::Odd}) {
      const std::int64_t f = g.full_index_of(p, s);
      EXPECT_EQ(g.parity(f), p);
      EXPECT_EQ(g.eo_index(f), s);
    }
  }
}

TEST(Geometry, DisplacementWrapsPeriodically) {
  LatticeGeom g(6);
  const Coords c{5, 0, 3, 2};
  EXPECT_EQ(g.displace(c, 0, +1)[0], 0);
  EXPECT_EQ(g.displace(c, 1, -1)[1], 5);
  EXPECT_EQ(g.displace(c, 2, +3)[2], 0);
  EXPECT_EQ(g.displace(c, 3, -3)[3], 5);
  // Full-period displacement is the identity.
  for (int d = 0; d < kNdim; ++d) EXPECT_EQ(g.displace(c, d, 6), c);
}

TEST(Geometry, ForwardThenBackwardIsIdentity) {
  LatticeGeom g(8);
  for (std::int64_t f = 0; f < g.volume(); f += 37) {
    for (int d = 0; d < kNdim; ++d) {
      for (int dist : {1, 3}) {
        EXPECT_EQ(g.neighbor(g.neighbor(f, d, dist), d, -dist), f);
      }
    }
  }
}

TEST(Geometry, OddDisplacementFlipsParity) {
  LatticeGeom g(6);
  for (std::int64_t f = 0; f < g.volume(); f += 11) {
    for (int d = 0; d < kNdim; ++d) {
      EXPECT_NE(g.parity(g.neighbor(f, d, 1)), g.parity(f));
      EXPECT_NE(g.parity(g.neighbor(f, d, 3)), g.parity(f));
      EXPECT_NE(g.parity(g.neighbor(f, d, -3)), g.parity(f));
    }
  }
}

TEST(NeighborTable, MatchesGeometry) {
  LatticeGeom g(6);
  NeighborTable t(g, Parity::Even);
  EXPECT_EQ(t.size(), static_cast<std::size_t>(g.half_volume() * kNeighbors));
  for (std::int64_t s = 0; s < g.half_volume(); s += 7) {
    const std::int64_t f = g.full_index_of(Parity::Even, s);
    for (int k = 0; k < kNdim; ++k) {
      for (int l = 0; l < kNlinks; ++l) {
        const std::int64_t expect =
            g.eo_index(g.neighbor(f, k, kStencilOffsets[static_cast<std::size_t>(l)]));
        EXPECT_EQ(t.at(s, k, l), expect);
      }
    }
  }
}

TEST(NeighborTable, OddTargetUsesEvenSources) {
  LatticeGeom g(4);
  NeighborTable t(g, Parity::Odd);
  EXPECT_EQ(t.target_parity(), Parity::Odd);
  // All indices must be valid checkerboard indices.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], 0);
    EXPECT_LT(t.data()[i], g.half_volume());
  }
}

// ------------------------------------------------------------------ fields --

TEST(ColorField, BlasOperations) {
  LatticeGeom g(4);
  ColorField x(g, Parity::Even), y(g, Parity::Even);
  x.fill_random(1);
  y.fill_random(2);

  const double nx = norm2(x);
  EXPECT_GT(nx, 0.0);

  // <x,x> is real and equals |x|^2.
  const dcomplex xx = dot(x, x);
  EXPECT_NEAR(xx.re, nx, 1e-10);
  EXPECT_NEAR(xx.im, 0.0, 1e-10);

  // <x,y> = conj(<y,x>)
  const dcomplex xy = dot(x, y), yx = dot(y, x);
  EXPECT_NEAR(xy.re, yx.re, 1e-10);
  EXPECT_NEAR(xy.im, -yx.im, 1e-10);

  // axpy: |x + a y|^2 = |x|^2 + 2a Re<x,y>... verify via direct recompute.
  ColorField z = x;
  axpy(0.5, y, z);
  double expect = 0.0;
  for (std::int64_t s = 0; s < x.size(); ++s) {
    const SU3Vector<dcomplex> v = x[s] + 0.5 * y[s];
    expect += norm2(v);
  }
  EXPECT_NEAR(norm2(z), expect, 1e-9);

  // xpay: z = x + a*z
  ColorField w = y;
  xpay(x, 2.0, w);
  for (std::int64_t s = 0; s < x.size(); s += 17) {
    const SU3Vector<dcomplex> v = x[s] + 2.0 * y[s];
    for (int i = 0; i < kColors; ++i) {
      EXPECT_NEAR(w[s].c[i].re, v.c[i].re, 1e-12);
    }
  }

  scale(0.0, w);
  EXPECT_EQ(norm2(w), 0.0);
  w.zero();
  EXPECT_EQ(norm2(w), 0.0);
}

TEST(GaugeView, GathersAdjointsCorrectly) {
  LatticeGeom g(4);
  GaugeConfiguration cfg(g);
  cfg.fill_random(3);
  GaugeView view(g, cfg, Parity::Even);
  for (std::int64_t s = 0; s < g.half_volume(); s += 5) {
    const std::int64_t f = g.full_index_of(Parity::Even, s);
    const Coords c = g.coords(f);
    for (int k = 0; k < kNdim; ++k) {
      EXPECT_LT(max_abs_diff(view.link(0, s, k), cfg.fat(f, k)), 1e-15);
      EXPECT_LT(max_abs_diff(view.link(1, s, k), cfg.lng(f, k)), 1e-15);
      const auto fb = adjoint(cfg.fat(g.full_index(g.displace(c, k, -1)), k));
      const auto lb = adjoint(cfg.lng(g.full_index(g.displace(c, k, -3)), k));
      EXPECT_LT(max_abs_diff(view.link(2, s, k), fb), 1e-15);
      EXPECT_LT(max_abs_diff(view.link(3, s, k), lb), 1e-15);
    }
  }
}

// --------------------------------------------------------------------- SoA --

class SoAGaugeRoundTrip : public ::testing::TestWithParam<Reconstruct> {};

TEST_P(SoAGaugeRoundTrip, UnpackMatchesView) {
  LatticeGeom g(4);
  GaugeConfiguration cfg(g);
  cfg.fill_random(4);
  GaugeView view(g, cfg, Parity::Even);
  SoAGauge soa(view, GetParam());
  EXPECT_EQ(soa.reals(), reals_per_link(GetParam()));
  for (std::int64_t s = 0; s < view.sites(); s += 13) {
    for (int l = 0; l < kNlinks; ++l) {
      for (int k = 0; k < kNdim; ++k) {
        EXPECT_LT(max_abs_diff(soa.unpack(l, s, k), view.link(l, s, k)), 1e-10);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SoAGaugeRoundTrip,
                         ::testing::Values(Reconstruct::k18, Reconstruct::k12,
                                           Reconstruct::k9));

TEST(SoAGauge, ComponentMajorLayout) {
  LatticeGeom g(4);
  GaugeConfiguration cfg(g);
  cfg.fill_random(5);
  GaugeView view(g, cfg, Parity::Even);
  SoAGauge soa(view, Reconstruct::k18);
  EXPECT_EQ(soa.pairs(), 9);
  // A double2 plane holds consecutive sites adjacently.
  const dcomplex* p0 = soa.pair_plane(0, 0, 0);
  EXPECT_EQ(soa.at(0, 0, 0, 1), p0[1].re);
  EXPECT_EQ(soa.at(0, 0, 1, 1), p0[1].im);
  // Pair 0 of (l=0,k=0) at site s is element (0,0) of the link.
  for (std::int64_t s = 0; s < view.sites(); s += 7) {
    EXPECT_EQ(soa.at(0, 0, 0, s), view.link(0, s, 0).e[0][0].re);
    EXPECT_EQ(soa.at(0, 0, 1, s), view.link(0, s, 0).e[0][0].im);
  }
}

TEST(SoAGauge, OddRealCountsArePadded) {
  LatticeGeom g(4);
  GaugeConfiguration cfg(g);
  cfg.fill_random(15);
  GaugeView view(g, cfg, Parity::Even);
  SoAGauge soa(view, Reconstruct::k9);
  EXPECT_EQ(soa.reals(), 9);
  EXPECT_EQ(soa.pairs(), 5);  // 9 reals pad to 5 double2 planes
  // The pad slot is zero.
  EXPECT_EQ(soa.pair_plane(0, 0, 4)[3].im, 0.0);
}

TEST(SoAColor, RoundTrip) {
  LatticeGeom g(4);
  ColorField f(g, Parity::Odd);
  f.fill_random(6);
  SoAColor soa(f);
  const ColorField back = soa.to_aos(g, Parity::Odd);
  EXPECT_LT(max_abs_diff(f, back), 1e-15);
  // Mutation through set() is visible through get().
  SU3Vector<dcomplex> v;
  v.c[0] = {1.0, -2.0};
  soa.set(3, v);
  EXPECT_EQ(soa.get(3).c[0], (dcomplex{1.0, -2.0}));
}

}  // namespace
}  // namespace milc
