// Direct unit tests of the PerfPipeline memory hierarchy: fill paths,
// write policies, atomic replay accounting, and end-of-kernel flush.
#include <gtest/gtest.h>

#include "gpusim/pipeline.hpp"

namespace gpusim {
namespace {

std::vector<LaneAccess> warp(std::uint64_t base, std::uint64_t stride, std::uint8_t size,
                             int lanes = 32) {
  std::vector<LaneAccess> v;
  for (int l = 0; l < lanes; ++l) {
    v.push_back({base + static_cast<std::uint64_t>(l) * stride, size,
                 static_cast<std::uint8_t>(l)});
  }
  return v;
}

TEST(Pipeline, ColdLoadFillsAllLevels) {
  PerfPipeline p(a100(), Calibration{});
  p.global_load(0, warp(0, 8, 8));  // 8 sectors
  const auto& c = p.counters();
  EXPECT_EQ(c.global_load_ops, 1u);
  EXPECT_EQ(c.l1_tag_requests_global, 8u);
  EXPECT_EQ(c.l1_sector_misses, 8u);
  EXPECT_EQ(c.l2_sector_misses, 8u);
  EXPECT_EQ(c.dram_sectors, 8u);
}

TEST(Pipeline, RepeatLoadHitsL1) {
  PerfPipeline p(a100(), Calibration{});
  p.global_load(0, warp(0, 8, 8));
  p.global_load(0, warp(0, 8, 8));
  const auto& c = p.counters();
  EXPECT_EQ(c.l1_sector_hits, 8u);
  EXPECT_EQ(c.dram_sectors, 8u);  // no new fills
}

TEST(Pipeline, DifferentSmHasOwnL1SharedL2) {
  PerfPipeline p(a100(), Calibration{});
  p.global_load(0, warp(0, 8, 8));
  p.global_load(1, warp(0, 8, 8));  // other SM: L1 cold, L2 warm
  const auto& c = p.counters();
  EXPECT_EQ(c.l1_sector_misses, 16u);
  EXPECT_EQ(c.l2_sector_hits, 8u);
  EXPECT_EQ(c.dram_sectors, 8u);
}

TEST(Pipeline, StoresWriteThroughL1AndDirtyL2) {
  PerfPipeline p(a100(), Calibration{});
  p.global_store(0, warp(0, 8, 8));
  const auto& c = p.counters();
  EXPECT_EQ(c.global_store_ops, 1u);
  EXPECT_EQ(c.l1_tag_requests_global, 8u);
  // Write-allocate in L2 without a DRAM fetch.
  EXPECT_EQ(c.dram_sectors, 0u);
  // A following load of the same data hits L2 (not L1: no-allocate).
  p.global_load(0, warp(0, 8, 8));
  EXPECT_EQ(p.counters().l2_sector_hits, 8u);
  EXPECT_EQ(p.counters().dram_sectors, 0u);
}

TEST(Pipeline, FinalizeFlushesDirtySectors) {
  PerfPipeline p(a100(), Calibration{});
  p.global_store(0, warp(0, 8, 8));
  p.finalize();
  EXPECT_EQ(p.counters().dram_sectors, 8u);  // write-backs
}

TEST(Pipeline, AtomicsBypassL1AndCountReplays) {
  PerfPipeline p(a100(), Calibration{});
  // 32 lanes, 4 distinct addresses (8-way collisions each).
  std::vector<LaneAccess> lanes;
  for (int l = 0; l < 32; ++l) {
    lanes.push_back({static_cast<std::uint64_t>(l % 4) * 8, 8, static_cast<std::uint8_t>(l)});
  }
  p.global_atomic(0, lanes);
  const auto& c = p.counters();
  EXPECT_EQ(c.atomic_ops, 1u);
  EXPECT_EQ(c.atomic_lane_updates, 32u);
  EXPECT_EQ(c.atomic_serial_replays, 32u - 4u);
  EXPECT_EQ(c.l1_sector_hits + c.l1_sector_misses, 0u);  // L1 untouched
  EXPECT_GT(c.l2_sector_requests, 0u);
}

TEST(Pipeline, SharedAccessCountsWavefronts) {
  PerfPipeline p(a100(), Calibration{});
  p.shared_access(warp(0, 4, 4), false);    // conflict-free
  p.shared_access(warp(0, 128, 4), true);   // all one bank
  const auto& c = p.counters();
  EXPECT_EQ(c.shared_ops, 2u);
  EXPECT_EQ(c.shared_wavefronts, 1u + 32u);
  EXPECT_EQ(c.shared_wavefronts_ideal, 2u);
}

TEST(Pipeline, L2CapacityEviction) {
  // Stream far more than 40 MB through L2: early sectors must be gone.
  MachineModel m = a100();
  PerfPipeline p(m, Calibration{});
  const std::uint64_t total = static_cast<std::uint64_t>(m.l2_bytes) * 2;
  for (std::uint64_t base = 0; base < total; base += 256) {
    p.global_load(0, warp(base, 8, 8));
  }
  p.global_load(0, warp(0, 8, 8));  // original line: L1 long evicted, L2 too
  const auto& c = p.counters();
  EXPECT_EQ(c.dram_sectors, total / 32 + 8);
}

TEST(Pipeline, ResetClearsEverything) {
  PerfPipeline p(a100(), Calibration{});
  p.global_load(0, warp(0, 8, 8));
  p.reset();
  EXPECT_EQ(p.counters().l1_tag_requests_global, 0u);
  p.global_load(0, warp(0, 8, 8));
  EXPECT_EQ(p.counters().l1_sector_misses, 8u);  // cold again
}

}  // namespace
}  // namespace gpusim
