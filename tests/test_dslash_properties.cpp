// Mathematical properties of the Dslash operator — these pin down the
// physics, independent of any parallel strategy.
#include <gtest/gtest.h>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc {
namespace {

TEST(DslashProperties, Linearity) {
  DslashProblem p(4, 21);
  const LatticeGeom& g = p.geom();

  ColorField x(g, Parity::Odd), y(g, Parity::Odd);
  x.fill_random(1);
  y.fill_random(2);

  // z = 2.5 x + (-1.25) y
  ColorField z = x;
  scale(2.5, z);
  axpy(-1.25, y, z);

  ColorField dx(g, Parity::Even), dy(g, Parity::Even), dz(g, Parity::Even);
  dslash_reference(p.view(), p.neighbors(), x, dx);
  dslash_reference(p.view(), p.neighbors(), y, dy);
  dslash_reference(p.view(), p.neighbors(), z, dz);

  ColorField expect = dx;
  scale(2.5, expect);
  axpy(-1.25, dy, expect);
  EXPECT_LT(max_abs_diff(dz, expect), 1e-9);
}

TEST(DslashProperties, ZeroInZeroOut) {
  DslashProblem p(4, 22);
  ColorField zero(p.geom(), Parity::Odd);
  zero.zero();
  ColorField out(p.geom(), Parity::Even);
  dslash_reference(p.view(), p.neighbors(), zero, out);
  EXPECT_EQ(norm2(out), 0.0);
}

TEST(DslashProperties, AntiHermiticity) {
  // The staggered operator satisfies (D_eo)^dagger = -D_oe: for any fields
  // v (even) and w (odd),  <v, D_eo w> = -conj(<w, D_oe v>).
  const int L = 4;
  LatticeGeom g(L);
  GaugeConfiguration cfg(g);
  cfg.fill_random(99);
  GaugeView view_e(g, cfg, Parity::Even);
  GaugeView view_o(g, cfg, Parity::Odd);
  NeighborTable nbr_e(g, Parity::Even);
  NeighborTable nbr_o(g, Parity::Odd);

  ColorField v(g, Parity::Even), w(g, Parity::Odd);
  v.fill_random(5);
  w.fill_random(6);

  ColorField Dw(g, Parity::Even), Dv(g, Parity::Odd);
  dslash_reference(view_e, nbr_e, w, Dw);
  dslash_reference(view_o, nbr_o, v, Dv);

  const dcomplex lhs = dot(v, Dw);
  const dcomplex rhs = dot(w, Dv);
  EXPECT_NEAR(lhs.re, -rhs.re, 1e-8);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8);  // -conj flips the real part only
}

TEST(DslashProperties, GaugeCovarianceUnderGlobalPhase) {
  // Multiplying B by a global phase multiplies C by the same phase.
  DslashProblem p(4, 23);
  ColorField b2 = p.b();
  const dcomplex phase{std::cos(0.7), std::sin(0.7)};
  for (std::int64_t s = 0; s < b2.size(); ++s) {
    for (int i = 0; i < kColors; ++i) b2[s].c[i] = cmul(phase, b2[s].c[i]);
  }
  ColorField c1(p.geom(), Parity::Even), c2(p.geom(), Parity::Even);
  dslash_reference(p.view(), p.neighbors(), p.b(), c1);
  dslash_reference(p.view(), p.neighbors(), b2, c2);
  for (std::int64_t s = 0; s < c1.size(); s += 9) {
    for (int i = 0; i < kColors; ++i) {
      const dcomplex expect = cmul(phase, c1[s].c[i]);
      EXPECT_NEAR(c2[s].c[i].re, expect.re, 1e-9);
      EXPECT_NEAR(c2[s].c[i].im, expect.im, 1e-9);
    }
  }
}

TEST(DslashProperties, FlopFormulaMatchesPaper) {
  // L = 32: the paper's "theoretical value of 600.8 million FLOP".
  const std::int64_t half = 32LL * 32 * 32 * 32 / 2;
  EXPECT_NEAR(dslash_flops(half), 600.8e6, 1e6);
}

TEST(DslashProperties, CountedFlopsTrackTheoretical) {
  // The traced kernels count 1152 FLOP/site (they charge the first
  // accumulate of each row, the paper's 1146 does not) — within 1%.
  DslashProblem p(4, 24);
  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP2,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  const RunResult r = runner.run(p, req);
  const double counted = static_cast<double>(r.stats.counters.flops);
  EXPECT_NEAR(counted / p.flops(), 1.0, 0.01);
}

TEST(DslashProperties, RepeatApplicationIsDeterministic) {
  DslashProblem p(4, 25);
  ColorField c1(p.geom(), Parity::Even), c2(p.geom(), Parity::Even);
  dslash_reference(p.view(), p.neighbors(), p.b(), c1);
  dslash_reference(p.view(), p.neighbors(), p.b(), c2);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
}

}  // namespace
}  // namespace milc
