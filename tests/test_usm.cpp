// USM-style allocation API: registry accounting and misuse detection.
#include <gtest/gtest.h>

#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"

namespace minisycl {
namespace {

TEST(Usm, AllocFreeAccounting) {
  queue q(ExecMode::functional);
  auto& reg = usm::Registry::instance();
  const std::size_t live0 = reg.live_bytes();
  const std::size_t n0 = reg.live_allocations();

  double* a = malloc_device<double>(1024, q);
  float* b = malloc_device<float>(256, q);
  EXPECT_EQ(reg.live_bytes(), live0 + 1024 * sizeof(double) + 256 * sizeof(float));
  EXPECT_EQ(reg.live_allocations(), n0 + 2);

  minisycl::free(a, q);
  minisycl::free(b, q);
  EXPECT_EQ(reg.live_bytes(), live0);
  EXPECT_EQ(reg.live_allocations(), n0);
}

TEST(Usm, MemcpyMovesBytes) {
  queue q(ExecMode::functional);
  double* d = malloc_device<double>(8, q);
  const double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  minisycl::memcpy(q, d, src, sizeof(src));
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[7], 8.0);
  minisycl::free(d, q);
}

TEST(Usm, DoubleFreeThrows) {
  queue q(ExecMode::functional);
  int* p = malloc_device<int>(4, q);
  minisycl::free(p, q);
  int* dangling = p;
  EXPECT_THROW(minisycl::free(dangling, q), minisycl::exception);
}

TEST(Usm, FreeingForeignPointerThrows) {
  queue q(ExecMode::functional);
  int host_var = 0;
  EXPECT_THROW(minisycl::free(&host_var, q), minisycl::exception);
}

TEST(Usm, MisuseCarriesErrorCode) {
  queue q(ExecMode::functional);
  int* p = malloc_device<int>(4, q);
  minisycl::free(p, q);
  int* dangling = p;
  try {
    minisycl::free(dangling, q);
    FAIL() << "double free did not throw";
  } catch (const minisycl::exception& e) {
    EXPECT_EQ(e.code(), errc::invalid);
  }
}

TEST(Usm, FreeNullIsNoop) {
  queue q(ExecMode::functional);
  double* p = nullptr;
  EXPECT_NO_THROW(minisycl::free(p, q));
}

TEST(Usm, DevicePtrRaii) {
  queue q(ExecMode::functional);
  auto& reg = usm::Registry::instance();
  const std::size_t n0 = reg.live_allocations();
  {
    device_ptr<double> buf(64, q);
    buf[0] = 3.5;
    EXPECT_DOUBLE_EQ(buf[0], 3.5);
    EXPECT_EQ(reg.live_allocations(), n0 + 1);
  }
  EXPECT_EQ(reg.live_allocations(), n0);
}

TEST(Usm, AlignmentIsCacheFriendly) {
  queue q(ExecMode::functional);
  double* p = malloc_device<double>(3, q);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  minisycl::free(p, q);
}

// ----------------------------------------------------------------------
// error-path diagnostics: misuse must be named, not just rejected
// ----------------------------------------------------------------------

/// Run `f` and return the diagnostic it throws (empty if it does not throw).
template <typename F>
std::string thrown_message(F&& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

TEST(UsmDiagnostics, FreeingInteriorPointerNamesTheAllocation) {
  queue q(ExecMode::functional);
  double* p = malloc_device<double>(16, q);
  const std::string msg = thrown_message([&] { minisycl::free(p + 2, q); });
  EXPECT_NE(msg.find("inside allocation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("size=128 B"), std::string::npos) << msg;  // 16 doubles
  EXPECT_NE(msg.find("base=0x"), std::string::npos) << msg;
  minisycl::free(p, q);
}

TEST(UsmDiagnostics, DoubleFreeNamesTheFreedAllocation) {
  queue q(ExecMode::functional);
  int* p = malloc_device<int>(8, q);
  minisycl::free(p, q);
  int* dangling = p;
  const std::string msg = thrown_message([&] { minisycl::free(dangling, q); });
  EXPECT_NE(msg.find("double free"), std::string::npos) << msg;
  EXPECT_NE(msg.find("size=32 B"), std::string::npos) << msg;  // 8 ints
}

TEST(UsmDiagnostics, MemcpyOverrunningDestinationThrowsOutOfRange) {
  queue q(ExecMode::functional);
  double* d = malloc_device<double>(8, q);
  const double src[16] = {};
  // 16 doubles into an 8-double allocation: a copy "spanning two
  // allocations" on real hardware; here it must throw before moving bytes.
  EXPECT_THROW(minisycl::memcpy(q, d, src, sizeof(src)), minisycl::exception);
  try {
    minisycl::memcpy(q, d, src, sizeof(src));
  } catch (const minisycl::exception& e) {
    EXPECT_EQ(e.code(), errc::out_of_bounds);
  }
  const std::string msg = thrown_message([&] { minisycl::memcpy(q, d, src, sizeof(src)); });
  EXPECT_NE(msg.find("overruns allocation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("size=64 B"), std::string::npos) << msg;
  EXPECT_NE(msg.find("by 64 B"), std::string::npos) << msg;
  minisycl::free(d, q);
}

TEST(UsmDiagnostics, MemcpyOverrunningSourceThrowsOutOfRange) {
  queue q(ExecMode::functional);
  double* s = malloc_device<double>(4, q);
  double dst[8];
  EXPECT_THROW(minisycl::memcpy(q, dst, s, sizeof(dst)), minisycl::exception);
  minisycl::free(s, q);
}

TEST(UsmDiagnostics, MemcpyIntoFreedAllocationThrows) {
  queue q(ExecMode::functional);
  double* d = malloc_device<double>(8, q);
  minisycl::free(d, q);
  const double src[8] = {};
  const std::string msg =
      thrown_message([&] { minisycl::memcpy(q, d, src, sizeof(src)); });
  EXPECT_NE(msg.find("freed allocation"), std::string::npos) << msg;
}

TEST(UsmDiagnostics, MemcpyBetweenHostBuffersIsUnchecked) {
  queue q(ExecMode::functional);
  double a[4] = {1, 2, 3, 4};
  double b[4] = {};
  EXPECT_NO_THROW(minisycl::memcpy(q, b, a, sizeof(a)));
  EXPECT_DOUBLE_EQ(b[3], 4.0);
}

TEST(UsmDiagnostics, SnapshotsReflectLiveAndFreedRegions) {
  queue q(ExecMode::functional);
  auto& reg = usm::Registry::instance();
  double* p = malloc_device<double>(32, q);
  const auto base = reinterpret_cast<std::uint64_t>(p);

  auto live = reg.live_snapshot();
  const auto in_live = [&] {
    for (const auto& r : live) {
      if (r.base == base && r.bytes == 32 * sizeof(double)) return true;
    }
    return false;
  };
  EXPECT_TRUE(in_live());

  minisycl::free(p, q);
  live = reg.live_snapshot();
  EXPECT_FALSE(in_live());
  bool in_freed = false;
  for (const auto& r : reg.freed_snapshot()) in_freed = in_freed || r.base == base;
  EXPECT_TRUE(in_freed);
}

}  // namespace
}  // namespace minisycl
