// USM-style allocation API: registry accounting and misuse detection.
#include <gtest/gtest.h>

#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"

namespace minisycl {
namespace {

TEST(Usm, AllocFreeAccounting) {
  queue q(ExecMode::functional);
  auto& reg = usm::Registry::instance();
  const std::size_t live0 = reg.live_bytes();
  const std::size_t n0 = reg.live_allocations();

  double* a = malloc_device<double>(1024, q);
  float* b = malloc_device<float>(256, q);
  EXPECT_EQ(reg.live_bytes(), live0 + 1024 * sizeof(double) + 256 * sizeof(float));
  EXPECT_EQ(reg.live_allocations(), n0 + 2);

  minisycl::free(a, q);
  minisycl::free(b, q);
  EXPECT_EQ(reg.live_bytes(), live0);
  EXPECT_EQ(reg.live_allocations(), n0);
}

TEST(Usm, MemcpyMovesBytes) {
  queue q(ExecMode::functional);
  double* d = malloc_device<double>(8, q);
  const double src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  minisycl::memcpy(q, d, src, sizeof(src));
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[7], 8.0);
  minisycl::free(d, q);
}

TEST(Usm, DoubleFreeThrows) {
  queue q(ExecMode::functional);
  int* p = malloc_device<int>(4, q);
  minisycl::free(p, q);
  int* dangling = p;
  EXPECT_THROW(minisycl::free(dangling, q), std::invalid_argument);
}

TEST(Usm, FreeingForeignPointerThrows) {
  queue q(ExecMode::functional);
  int host_var = 0;
  EXPECT_THROW(minisycl::free(&host_var, q), std::invalid_argument);
}

TEST(Usm, FreeNullIsNoop) {
  queue q(ExecMode::functional);
  double* p = nullptr;
  EXPECT_NO_THROW(minisycl::free(p, q));
}

TEST(Usm, DevicePtrRaii) {
  queue q(ExecMode::functional);
  auto& reg = usm::Registry::instance();
  const std::size_t n0 = reg.live_allocations();
  {
    device_ptr<double> buf(64, q);
    buf[0] = 3.5;
    EXPECT_DOUBLE_EQ(buf[0], 3.5);
    EXPECT_EQ(reg.live_allocations(), n0 + 1);
  }
  EXPECT_EQ(reg.live_allocations(), n0);
}

TEST(Usm, AlignmentIsCacheFriendly) {
  queue q(ExecMode::functional);
  double* p = malloc_device<double>(3, q);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  minisycl::free(p, q);
}

}  // namespace
}  // namespace minisycl
