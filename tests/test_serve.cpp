// test_serve.cpp — the serving tier: admission-queue edge cases (zero and
// expired deadlines, duplicate ids, quota exhaustion ordering), the circuit
// breaker state machine (trip thresholds, cooloff growth, the half-open
// probe race guard), the deadline hooks on ShardedCgSolver (max_applies,
// cooperative cancel), and SolverService end-to-end: cancellation after
// dispatch, shrink-to-survivors placement, breaker recovery under a device
// storm, and same-seed replay identity of the SloReport.
#include <gtest/gtest.h>

#include "serve/service.hpp"

namespace milc::serve {
namespace {

using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

SolveRequest req(std::uint64_t id, const char* tenant, int priority,
                 double submit_us = 0.0, double deadline_us = kNoDeadline) {
  SolveRequest r;
  r.id = id;
  r.tenant = tenant;
  r.priority = priority;
  r.submit_us = submit_us;
  r.deadline_us = deadline_us;
  r.source_seed = 700 + id * 13;
  return r;
}

// --- AdmissionQueue ---------------------------------------------------------

TEST(AdmissionQueue, ZeroAndExpiredDeadlinesRejectedAtAdmission) {
  AdmissionQueue q;
  // A deadline at or before the submission instant can never be met.
  EXPECT_FALSE(q.admit(req(1, "a", 1, 100.0, 100.0), 100.0).admitted);
  EXPECT_EQ(q.admit(req(1, "a", 1, 100.0, 100.0), 100.0).reason,
            RejectReason::deadline_expired);
  EXPECT_FALSE(q.admit(req(2, "a", 1, 100.0, 40.0), 100.0).admitted);
  EXPECT_TRUE(q.admit(req(3, "a", 1, 100.0, 100.5), 100.0).admitted);
  EXPECT_EQ(q.size(), 1u);
}

TEST(AdmissionQueue, DuplicateIdsRejectedForever) {
  AdmissionQueue q;
  EXPECT_TRUE(q.admit(req(7, "a", 1), 0.0).admitted);
  // Still queued: duplicate.
  EXPECT_EQ(q.admit(req(7, "b", 1), 1.0).reason, RejectReason::duplicate_id);
  SolveRequest out;
  ASSERT_TRUE(q.pop(1.0, out));
  q.mark_inflight(out);
  // In flight: still a duplicate.
  EXPECT_EQ(q.admit(req(7, "a", 1), 2.0).reason, RejectReason::duplicate_id);
  q.mark_done(out);
  // Finished: ids are never recycled.
  EXPECT_EQ(q.admit(req(7, "a", 1), 3.0).reason, RejectReason::duplicate_id);
}

TEST(AdmissionQueue, TenantQuotaThenGlobalCapacity) {
  QueueConfig cfg;
  cfg.capacity = 4;
  cfg.tenant_max_queued = 2;
  AdmissionQueue q(cfg);
  EXPECT_TRUE(q.admit(req(1, "a", 1), 0.0).admitted);
  EXPECT_TRUE(q.admit(req(2, "a", 1), 0.0).admitted);
  // Third for tenant a: the per-tenant quota fires before global capacity.
  EXPECT_EQ(q.admit(req(3, "a", 1), 0.0).reason, RejectReason::tenant_quota);
  EXPECT_TRUE(q.admit(req(4, "b", 1), 0.0).admitted);
  EXPECT_TRUE(q.admit(req(5, "b", 1), 0.0).admitted);
  // Queue is globally full: even a fresh tenant is backpressured.
  EXPECT_EQ(q.admit(req(6, "c", 1), 0.0).reason, RejectReason::queue_full);
  EXPECT_EQ(q.size(), 4u);
}

TEST(AdmissionQueue, PopOrderIsPriorityThenDeadlineThenId) {
  AdmissionQueue q;
  ASSERT_TRUE(q.admit(req(5, "a", 1), 0.0).admitted);
  ASSERT_TRUE(q.admit(req(2, "b", 2), 0.0).admitted);                 // no deadline
  ASSERT_TRUE(q.admit(req(4, "c", 2, 0.0, 100.0), 0.0).admitted);    // EDF ties...
  ASSERT_TRUE(q.admit(req(3, "d", 2, 0.0, 100.0), 0.0).admitted);    // ...go to lower id
  SolveRequest out;
  std::vector<std::uint64_t> order;
  while (q.pop(0.0, out)) {
    order.push_back(out.id);
    q.mark_inflight(out);  // distinct tenants: quota never gates this test
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4, 2, 5}));
}

TEST(AdmissionQueue, BackoffAndInflightQuotaGatePop) {
  QueueConfig cfg;
  cfg.tenant_max_inflight = 1;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.admit(req(1, "a", 1), 0.0).admitted);
  ASSERT_TRUE(q.admit(req(2, "a", 1), 0.0).admitted);
  SolveRequest out;
  ASSERT_TRUE(q.pop(0.0, out));
  EXPECT_EQ(out.id, 1u);
  q.mark_inflight(out);
  // Tenant a is at its in-flight quota: id 2 waits even though it is queued.
  EXPECT_FALSE(q.pop(0.0, out));
  q.mark_done(out);
  ASSERT_TRUE(q.pop(0.0, out));
  EXPECT_EQ(out.id, 2u);
  // Requeue with backoff: ineligible until not_before_us.
  out.not_before_us = 500.0;
  q.requeue(out);
  EXPECT_FALSE(q.pop(499.0, out));
  EXPECT_EQ(q.next_ready_us(499.0), 500.0);
  EXPECT_TRUE(q.pop(500.0, out));
}

TEST(AdmissionQueue, SweepExpiredAndDrainOrderById) {
  AdmissionQueue q;
  ASSERT_TRUE(q.admit(req(9, "a", 1, 0.0, 50.0), 0.0).admitted);
  ASSERT_TRUE(q.admit(req(4, "b", 2, 0.0, 40.0), 0.0).admitted);
  ASSERT_TRUE(q.admit(req(6, "c", 3), 0.0).admitted);
  const auto expired = q.sweep_expired(60.0);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 4u);
  EXPECT_EQ(expired[1].id, 9u);
  const auto rest = q.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].id, 6u);
  EXPECT_TRUE(q.empty());
}

// --- CircuitBreaker ---------------------------------------------------------

TEST(CircuitBreaker, TripsOnConsecutiveFailuresOnly) {
  CircuitBreaker b("d0", BreakerConfig{});
  b.on_failure(1.0, "x");
  b.on_failure(2.0, "x");
  b.on_success(3.0);  // resets the consecutive count
  b.on_failure(4.0, "x");
  b.on_failure(5.0, "x");
  EXPECT_EQ(b.state(), BreakerState::closed);
  EXPECT_TRUE(b.allow());
  b.on_failure(6.0, "x");  // third consecutive
  EXPECT_EQ(b.state(), BreakerState::open);
  EXPECT_FALSE(b.allow());
  EXPECT_EQ(b.trips(), 1);
}

TEST(CircuitBreaker, CooloffGrowsPerTripAndIsCapped) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooloff_us = 1000.0;
  cfg.cooloff_factor = 2.0;
  cfg.max_cooloff_us = 3000.0;
  CircuitBreaker b("d0", cfg);
  b.on_failure(0.0, "x");
  EXPECT_EQ(b.open_until(), 1000.0);
  b.poll(1000.0);
  ASSERT_EQ(b.state(), BreakerState::half_open);
  b.on_failure(1000.0, "probe failed");  // second trip: cooloff doubles
  EXPECT_EQ(b.open_until(), 3000.0);
  b.poll(3000.0);
  b.on_failure(3000.0, "probe failed");  // third trip: 4000 us capped to 3000
  EXPECT_EQ(b.open_until(), 6000.0);
  EXPECT_EQ(b.trips(), 3);
}

TEST(CircuitBreaker, HalfOpenProbeRaceGuardAndRecovery) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  CircuitBreaker b("d1", cfg);
  b.on_failure(0.0, "x");
  EXPECT_FALSE(b.probe_allowed());  // still open
  b.poll(cfg.cooloff_us);
  ASSERT_EQ(b.state(), BreakerState::half_open);
  EXPECT_FALSE(b.allow());  // half-open never takes ordinary work
  ASSERT_TRUE(b.probe_allowed());
  const int token = b.probe_started();
  // The race guard: a second concurrent dispatch cycle gets no probe.
  EXPECT_FALSE(b.probe_allowed());
  // A *work* success landing while half-open (a solve dispatched before the
  // trip) must never close the breaker in place of the probe.
  b.on_success(cfg.cooloff_us + 1.0);
  EXPECT_EQ(b.state(), BreakerState::half_open);
  // Only the probe's own outcome closes it.
  b.on_probe_success(cfg.cooloff_us + 2.0, token);
  EXPECT_EQ(b.state(), BreakerState::closed);
  EXPECT_TRUE(b.allow());
  // The full trajectory is enumerated.
  ASSERT_EQ(b.events().size(), 3u);
  EXPECT_EQ(b.events()[0].to, BreakerState::open);
  EXPECT_EQ(b.events()[1].to, BreakerState::half_open);
  EXPECT_EQ(b.events()[2].to, BreakerState::closed);
}

// Regression: a probe outcome that lands after a concurrent failure reopened
// the breaker carries a stale token and must be ignored — previously it could
// close a breaker that had just re-tripped, closing it out of order.
TEST(CircuitBreaker, StaleProbeSuccessAfterConcurrentFailureIsIgnored) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooloff_us = 100.0;
  CircuitBreaker b("d2", cfg);
  b.on_failure(0.0, "x");
  b.poll(100.0);
  ASSERT_EQ(b.state(), BreakerState::half_open);
  const int token = b.probe_started();
  // A concurrent in-flight solve fails while the probe is out: reopen.
  b.on_failure(101.0, "late solve failure");
  ASSERT_EQ(b.state(), BreakerState::open);
  EXPECT_EQ(b.trips(), 2);
  // The probe's success now arrives — stale, must NOT close the breaker.
  b.on_probe_success(102.0, token);
  EXPECT_EQ(b.state(), BreakerState::open);
  EXPECT_FALSE(b.allow());
  // Same for a stale probe failure: no double trip.
  b.on_probe_failure(103.0, "stale", token);
  EXPECT_EQ(b.trips(), 2);
  // The next half-open cycle issues a fresh token that does resolve.
  b.poll(b.open_until());
  ASSERT_EQ(b.state(), BreakerState::half_open);
  const int token2 = b.probe_started();
  EXPECT_NE(token2, token);
  b.on_probe_success(b.open_until() + 1.0, token2);
  EXPECT_EQ(b.state(), BreakerState::closed);
}

// A probe failure reopens with a grown cooloff; a rejoined resource enters
// probation (half-open) regardless of prior state so capacity returns only
// through a successful probe.
TEST(CircuitBreaker, ProbeFailureReopensAndProbationForcesHalfOpen) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooloff_us = 100.0;
  cfg.cooloff_factor = 2.0;
  CircuitBreaker b("d3", cfg);
  b.on_failure(0.0, "x");
  b.poll(100.0);
  const int token = b.probe_started();
  b.on_probe_failure(100.0, "still broken", token);
  EXPECT_EQ(b.state(), BreakerState::open);
  EXPECT_EQ(b.open_until(), 300.0);  // 100 + 100 * 2^1
  // Elastic rejoin: force probation from open.
  b.begin_probation(150.0, "healed; rejoining");
  EXPECT_EQ(b.state(), BreakerState::half_open);
  EXPECT_FALSE(b.allow());  // no traffic before a probe passes
  ASSERT_TRUE(b.probe_allowed());
  const int token2 = b.probe_started();
  b.on_probe_success(151.0, token2);
  EXPECT_EQ(b.state(), BreakerState::closed);
  EXPECT_TRUE(b.allow());
}

// --- deadline hooks on the sharded CG solver --------------------------------

const Coords kDims{4, 4, 4, 12};
constexpr std::uint64_t kGaugeSeed = 31;
constexpr double kMass = 0.5;

multidev::ShardedCgConfig cg_config() {
  multidev::ShardedCgConfig cfg;
  cfg.cg.rel_tol = 1e-8;
  cfg.cg.max_iterations = 400;
  cfg.checkpoint_interval = 8;
  return cfg;
}

TEST(ShardedCgDeadline, MaxAppliesStopsCleanlyAtIterationBoundary) {
  auto cfg = cg_config();
  cfg.max_applies = 9;
  multidev::ShardedCgSolver solver(kDims, kGaugeSeed, kMass,
                                   multidev::PartitionGrid::along(3, 2), cfg);
  ColorField b(solver.geom(), Parity::Even);
  b.fill_random(77);
  ColorField x(solver.geom(), Parity::Even);
  x.zero();
  const auto res = solver.solve(b, x);
  EXPECT_TRUE(res.cancelled);
  EXPECT_FALSE(res.cg.converged);
  EXPECT_LE(res.applies, cfg.max_applies + 1);  // stops at the boundary
  EXPECT_GT(res.cg.iterations, 0);
  EXPECT_GT(norm2(x), 0.0);  // the current iterate is preserved, not wiped
}

TEST(ShardedCgDeadline, CancelHookAbandonsTheSolve) {
  auto cfg = cg_config();
  cfg.cancel = [](int iteration, int) { return iteration >= 3; };
  multidev::ShardedCgSolver solver(kDims, kGaugeSeed, kMass,
                                   multidev::PartitionGrid::along(3, 2), cfg);
  ColorField b(solver.geom(), Parity::Even);
  b.fill_random(77);
  ColorField x(solver.geom(), Parity::Even);
  x.zero();
  const auto res = solver.solve(b, x);
  EXPECT_TRUE(res.cancelled);
  EXPECT_LE(res.cg.iterations, 4);
}

// --- SolverService ----------------------------------------------------------

std::vector<ProblemSpec> catalog() {
  ProblemSpec wide;
  wide.name = "wide-4x4x4x12";
  wide.dims = kDims;
  wide.gauge_seed = kGaugeSeed;
  wide.mass = kMass;
  wide.rel_tol = 1e-6;
  wide.max_iterations = 250;
  wide.checkpoint_interval = 8;
  return {wide};
}

ServiceConfig service_config() {
  ServiceConfig cfg;
  cfg.cluster = {2, 2};
  return cfg;
}

TEST(SolverService, CompletedRequestsAreBitForBitCertified) {
  SolverService svc(catalog(), service_config());
  auto r1 = req(1, "a", 1);
  auto r2 = req(2, "b", 1, 10.0);
  r2.devices = 2;
  const SloReport rep = svc.run("unit-steady", {r1, r2});
  ASSERT_EQ(rep.completed, 2);
  for (const RequestOutcome& o : rep.outcomes) {
    EXPECT_TRUE(o.abft_certified);
    EXPECT_TRUE(o.deadline_met);
    EXPECT_EQ(o.solution_fnv, svc.reference_checksums(o.req.spec, o.req.rhs,
                                                      o.req.source_seed, o.strategy_used));
  }
}

TEST(SolverService, CancellationAfterDispatchFreesTheDevices) {
  SolverService svc(catalog(), service_config());
  auto r1 = req(1, "a", 1);       // dispatched at t=0, runs for thousands of us
  auto r2 = req(2, "a", 1, 50.0); // runs after the cancel frees the device pool
  const SloReport rep = svc.run("unit-cancel", {r1, r2}, {{40.0, 1}});
  ASSERT_EQ(rep.outcomes.size(), 2u);
  const RequestOutcome& o1 = rep.outcomes[0];
  EXPECT_EQ(o1.status, RequestOutcome::Status::cancelled);
  EXPECT_FALSE(o1.reason.empty());
  EXPECT_GE(o1.dispatch_us, 0.0);      // it WAS dispatched when the cancel landed
  EXPECT_EQ(o1.complete_us, 40.0);     // and terminated at the cancel instant
  EXPECT_TRUE(o1.solution_fnv.empty()); // no partial solution is certified
  EXPECT_EQ(rep.outcomes[1].status, RequestOutcome::Status::completed);
}

TEST(SolverService, ShrinksToSurvivorsWhenPreferredCountIsInfeasible) {
  SolverService svc(catalog(), service_config());
  FaultPlan plan;
  plan.seed = 5;
  // d1 and d3 die at their first idle health check: no node retains two
  // usable devices, so a 2-device request must shrink to a single survivor.
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "serve/device d1"});
  plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "serve/device d3"});
  auto r = req(1, "a", 1, 100.0);
  r.devices = 2;
  SloReport rep;
  {
    ScopedFaultInjection fi(plan);
    rep = svc.run("unit-shrink", {r});
  }
  ASSERT_EQ(rep.completed, 1);
  const RequestOutcome& o = rep.outcomes[0];
  EXPECT_EQ(o.devices, "d0");
  EXPECT_EQ(o.grid, "1x1x1x1");
  EXPECT_EQ(o.solution_fnv,
            svc.reference_checksums(0, 1, o.req.source_seed, o.strategy_used));
  bool shrank = false, lost = false;
  for (const DegradationEvent& d : rep.degradations) {
    shrank = shrank || d.kind == "shrink-to-survivors";
    lost = lost || d.kind == "device-lost";
  }
  EXPECT_TRUE(shrank);
  EXPECT_TRUE(lost);
}

TEST(SolverService, BreakerTripsAndRecoversUnderDeviceStorm) {
  SolverService svc(catalog(), service_config());
  FaultPlan plan;
  plan.seed = 7;
  // Rank 1 of every 2-device grid faults at every in-solve device check:
  // completions keep charging the physical device behind rank 1 until its
  // breaker trips; half-open probes (which draw no faults here) recover it.
  plan.schedule.push_back(
      ScheduledFault{FaultKind::device_loss, 0, 1'000'000, "device r1 @"});
  std::vector<SolveRequest> traffic;
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto r = req(100 + i, i % 2 == 0 ? "a" : "b", 1, 3000.0 * static_cast<double>(i));
    r.devices = 2;
    r.retry_budget = 2;
    traffic.push_back(r);
  }
  SloReport rep;
  {
    ScopedFaultInjection fi(plan);
    rep = svc.run("unit-breaker", traffic);
  }
  EXPECT_EQ(rep.completed + rep.shed, rep.submitted);
  int open = 0, half_open = 0, closed = 0;
  for (const BreakerEvent& e : rep.breaker_events) {
    open += e.to == BreakerState::open ? 1 : 0;
    half_open += e.to == BreakerState::half_open ? 1 : 0;
    closed += e.to == BreakerState::closed ? 1 : 0;
  }
  EXPECT_GE(open, 1);       // the storm trips a breaker...
  EXPECT_GE(half_open, 1);  // ...cooloff elapses on the simulated clock...
  EXPECT_GE(closed, 1);     // ...and a successful probe closes it again
  for (const RequestOutcome& o : rep.outcomes) {
    if (o.status == RequestOutcome::Status::completed) {
      EXPECT_EQ(o.solution_fnv, svc.reference_checksums(o.req.spec, o.req.rhs,
                                                        o.req.source_seed, o.strategy_used));
    }
  }
}

TEST(SolverService, ShedsWithRecoveryExhaustedWhenTheLadderFails) {
  // A fault no recovery tier can outrun — every Dslash launch sticks
  // forever, so retries, fallbacks and failovers all fail on every grid —
  // must surface as a *shed* with ShedReason::recovery_exhausted, carrying
  // the solver's structured detail.  Never a hang, never a certified wrong
  // answer.
  SolverService svc(catalog(), service_config());
  FaultPlan plan;
  plan.seed = 11;
  plan.schedule.push_back(
      ScheduledFault{FaultKind::sticky_fault, 0, 100'000'000, "dslash-"});
  auto r = req(1, "a", 1);
  r.retry_budget = 0;  // shed on the first exhaustion instead of re-dispatching
  SloReport rep;
  {
    ScopedFaultInjection fi(plan);
    rep = svc.run("unit-exhaust", {r});
  }
  ASSERT_EQ(rep.outcomes.size(), 1u);
  const RequestOutcome& o = rep.outcomes[0];
  EXPECT_EQ(o.status, RequestOutcome::Status::shed);
  EXPECT_EQ(o.reason, std::string(to_string(ShedReason::recovery_exhausted)));
  EXPECT_TRUE(o.solution_fnv.empty()) << "a shed request certifies nothing";
  EXPECT_FALSE(o.abft_certified);
  bool exhausted_detail = false;
  for (const DegradationEvent& d : rep.degradations) {
    if (d.kind == "shed" &&
        d.detail.find("recovery ladder exhausted") != std::string::npos) {
      exhausted_detail = true;
    }
  }
  EXPECT_TRUE(exhausted_detail);
  EXPECT_EQ(rep.shed, 1);
  EXPECT_EQ(rep.completed, 0);
}

TEST(SolverService, SameSeedReplayProducesIdenticalSloReport) {
  SolverService svc(catalog(), service_config());
  FaultPlan plan;
  plan.seed = 2024;
  plan.p_msg_drop = 0.02;
  plan.p_msg_corrupt = 0.02;
  plan.p_serve = 0.05;
  std::vector<SolveRequest> traffic;
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto r = req(200 + i, i % 2 == 0 ? "a" : "b", 1 + static_cast<int>(i % 2),
                 2000.0 * static_cast<double>(i));
    r.devices = i % 2 == 0 ? 1 : 2;
    traffic.push_back(r);
  }
  const auto run_once = [&] {
    ScopedFaultInjection fi(plan);
    return svc.run("unit-replay", traffic);
  };
  const SloReport a = run_once();
  const SloReport b = run_once();
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.canonical(), b.canonical());
}

}  // namespace
}  // namespace milc::serve
