// Profiler report formatting (the Table-I printer) and the umbrella header.
#include <gtest/gtest.h>

#include <sstream>

#include "milc.hpp"  // the umbrella must compile and expose everything below

namespace {

TEST(FormatCount, MatchesTableOneStyle) {
  EXPECT_EQ(gpusim::format_count(0.5e6), "0.5M");
  EXPECT_EQ(gpusim::format_count(6.3e6), "6.3M");
  EXPECT_EQ(gpusim::format_count(190e6), "190M");
  EXPECT_EQ(gpusim::format_count(5461), "5.5K");
  EXPECT_EQ(gpusim::format_count(42), "42");
}

gpusim::KernelStats sample_stats(const char* name) {
  gpusim::KernelStats st;
  st.name = name;
  st.duration_us = 929.2;
  st.launch.global_size = 6291456;
  st.launch.local_size = 768;
  st.launch.shared_bytes_per_group = 12288;
  st.occupancy.achieved = 0.74;
  st.counters.l1_tag_requests_global = 86'000'000;
  st.counters.shared_wavefronts = 4'700'000;
  st.counters.shared_wavefronts_ideal = 2'300'000;
  st.shared_kb_per_group = 12.288;
  st.avg_divergent_branches = 0.0;
  return st;
}

TEST(PrintTable1, ContainsEveryRowAndColumn) {
  std::ostringstream os;
  const std::vector<gpusim::KernelStats> cols = {sample_stats("3LP-1 k"),
                                                 sample_stats("3LP-1 i")};
  gpusim::print_table1(os, cols);
  const std::string out = os.str();
  for (const char* needle :
       {"Duration (us)", "Work-items", "Achieved occupancy", "Peak performance",
        "L1/TEX cache throughput", "L1/TEX miss rate", "L2 miss rate",
        "Dyn. shared mem per WG", "L1 tag requests global", "L1 wavefronts shared",
        "Excessive L1 wavefronts shared", "Avg. divergent branches", "3LP-1 k", "3LP-1 i",
        "929.2", "6.3M", "86M", "12.3"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

TEST(PrintKernelReport, ContainsTimingDecomposition) {
  std::ostringstream os;
  gpusim::KernelStats st = sample_stats("probe");
  st.timing.total_s = 929.2e-6;
  st.timing.dram_s = 900e-6;
  st.timing.bound_by = "dram";
  gpusim::print_kernel_report(os, st);
  const std::string out = os.str();
  EXPECT_NE(out.find("kernel: probe"), std::string::npos);
  EXPECT_NE(out.find("bound_by=dram"), std::string::npos);
  EXPECT_NE(out.find("occupancy:"), std::string::npos);
  EXPECT_NE(out.find("timing:"), std::string::npos);
}

TEST(UmbrellaHeader, ExposesTheMainEntryPoints) {
  // Compile-time proof that milc.hpp covers the advertised surface.
  milc::LatticeGeom geom(4);
  milc::DslashProblem problem(4, 1);
  milc::DslashRunner runner;
  minisycl::device dev;
  (void)geom;
  (void)dev;
  EXPECT_EQ(problem.sites(), 128);
  EXPECT_EQ(runner.machine().num_sms, 108);
}

}  // namespace
