# Empty compiler generated dependencies file for hisq_pipeline.
# This may be replaced when dependencies are built.
