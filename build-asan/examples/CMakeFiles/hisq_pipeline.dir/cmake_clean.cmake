file(REMOVE_RECURSE
  "CMakeFiles/hisq_pipeline.dir/hisq_pipeline.cpp.o"
  "CMakeFiles/hisq_pipeline.dir/hisq_pipeline.cpp.o.d"
  "hisq_pipeline"
  "hisq_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hisq_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
