file(REMOVE_RECURSE
  "CMakeFiles/autotune_explorer.dir/autotune_explorer.cpp.o"
  "CMakeFiles/autotune_explorer.dir/autotune_explorer.cpp.o.d"
  "autotune_explorer"
  "autotune_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
