# Empty dependencies file for autotune_explorer.
# This may be replaced when dependencies are built.
