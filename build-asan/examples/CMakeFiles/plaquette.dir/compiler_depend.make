# Empty compiler generated dependencies file for plaquette.
# This may be replaced when dependencies are built.
