file(REMOVE_RECURSE
  "CMakeFiles/plaquette.dir/plaquette.cpp.o"
  "CMakeFiles/plaquette.dir/plaquette.cpp.o.d"
  "plaquette"
  "plaquette.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plaquette.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
