file(REMOVE_RECURSE
  "CMakeFiles/mixed_cg.dir/mixed_cg.cpp.o"
  "CMakeFiles/mixed_cg.dir/mixed_cg.cpp.o.d"
  "mixed_cg"
  "mixed_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
