# Empty dependencies file for mixed_cg.
# This may be replaced when dependencies are built.
