# Empty compiler generated dependencies file for checkpoint_workflow.
# This may be replaced when dependencies are built.
