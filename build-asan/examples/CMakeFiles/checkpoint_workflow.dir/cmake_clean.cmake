file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_workflow.dir/checkpoint_workflow.cpp.o"
  "CMakeFiles/checkpoint_workflow.dir/checkpoint_workflow.cpp.o.d"
  "checkpoint_workflow"
  "checkpoint_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
