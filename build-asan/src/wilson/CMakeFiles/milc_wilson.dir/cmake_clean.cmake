file(REMOVE_RECURSE
  "CMakeFiles/milc_wilson.dir/gamma.cpp.o"
  "CMakeFiles/milc_wilson.dir/gamma.cpp.o.d"
  "CMakeFiles/milc_wilson.dir/wilson.cpp.o"
  "CMakeFiles/milc_wilson.dir/wilson.cpp.o.d"
  "CMakeFiles/milc_wilson.dir/wilson_solver.cpp.o"
  "CMakeFiles/milc_wilson.dir/wilson_solver.cpp.o.d"
  "libmilc_wilson.a"
  "libmilc_wilson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
