# Empty compiler generated dependencies file for milc_wilson.
# This may be replaced when dependencies are built.
