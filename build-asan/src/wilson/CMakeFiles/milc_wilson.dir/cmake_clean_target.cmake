file(REMOVE_RECURSE
  "libmilc_wilson.a"
)
