file(REMOVE_RECURSE
  "libgpusim.a"
)
