
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cache.cpp" "src/gpusim/CMakeFiles/gpusim.dir/cache.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/cache.cpp.o.d"
  "/root/repo/src/gpusim/coalescer.cpp" "src/gpusim/CMakeFiles/gpusim.dir/coalescer.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/coalescer.cpp.o.d"
  "/root/repo/src/gpusim/dram.cpp" "src/gpusim/CMakeFiles/gpusim.dir/dram.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/dram.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/gpusim/CMakeFiles/gpusim.dir/occupancy.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/pipeline.cpp" "src/gpusim/CMakeFiles/gpusim.dir/pipeline.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/pipeline.cpp.o.d"
  "/root/repo/src/gpusim/profiler.cpp" "src/gpusim/CMakeFiles/gpusim.dir/profiler.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/profiler.cpp.o.d"
  "/root/repo/src/gpusim/roofline.cpp" "src/gpusim/CMakeFiles/gpusim.dir/roofline.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/roofline.cpp.o.d"
  "/root/repo/src/gpusim/stats.cpp" "src/gpusim/CMakeFiles/gpusim.dir/stats.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/stats.cpp.o.d"
  "/root/repo/src/gpusim/timing.cpp" "src/gpusim/CMakeFiles/gpusim.dir/timing.cpp.o" "gcc" "src/gpusim/CMakeFiles/gpusim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
