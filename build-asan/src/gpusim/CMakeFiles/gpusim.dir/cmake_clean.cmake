file(REMOVE_RECURSE
  "CMakeFiles/gpusim.dir/cache.cpp.o"
  "CMakeFiles/gpusim.dir/cache.cpp.o.d"
  "CMakeFiles/gpusim.dir/coalescer.cpp.o"
  "CMakeFiles/gpusim.dir/coalescer.cpp.o.d"
  "CMakeFiles/gpusim.dir/dram.cpp.o"
  "CMakeFiles/gpusim.dir/dram.cpp.o.d"
  "CMakeFiles/gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/gpusim.dir/pipeline.cpp.o"
  "CMakeFiles/gpusim.dir/pipeline.cpp.o.d"
  "CMakeFiles/gpusim.dir/profiler.cpp.o"
  "CMakeFiles/gpusim.dir/profiler.cpp.o.d"
  "CMakeFiles/gpusim.dir/roofline.cpp.o"
  "CMakeFiles/gpusim.dir/roofline.cpp.o.d"
  "CMakeFiles/gpusim.dir/stats.cpp.o"
  "CMakeFiles/gpusim.dir/stats.cpp.o.d"
  "CMakeFiles/gpusim.dir/timing.cpp.o"
  "CMakeFiles/gpusim.dir/timing.cpp.o.d"
  "libgpusim.a"
  "libgpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
