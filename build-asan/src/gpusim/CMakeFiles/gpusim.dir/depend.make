# Empty dependencies file for gpusim.
# This may be replaced when dependencies are built.
