file(REMOVE_RECURSE
  "libmilc_ksan.a"
)
