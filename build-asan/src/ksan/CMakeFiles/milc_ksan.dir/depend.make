# Empty dependencies file for milc_ksan.
# This may be replaced when dependencies are built.
