file(REMOVE_RECURSE
  "CMakeFiles/milc_ksan.dir/report.cpp.o"
  "CMakeFiles/milc_ksan.dir/report.cpp.o.d"
  "CMakeFiles/milc_ksan.dir/sanitizer.cpp.o"
  "CMakeFiles/milc_ksan.dir/sanitizer.cpp.o.d"
  "libmilc_ksan.a"
  "libmilc_ksan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_ksan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
