# Empty dependencies file for milc_complexlib.
# This may be replaced when dependencies are built.
