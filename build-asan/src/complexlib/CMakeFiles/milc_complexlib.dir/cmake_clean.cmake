file(REMOVE_RECURSE
  "CMakeFiles/milc_complexlib.dir/dcomplex.cpp.o"
  "CMakeFiles/milc_complexlib.dir/dcomplex.cpp.o.d"
  "libmilc_complexlib.a"
  "libmilc_complexlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_complexlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
