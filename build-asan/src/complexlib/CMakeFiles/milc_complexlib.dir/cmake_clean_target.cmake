file(REMOVE_RECURSE
  "libmilc_complexlib.a"
)
