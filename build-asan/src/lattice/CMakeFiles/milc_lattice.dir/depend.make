# Empty dependencies file for milc_lattice.
# This may be replaced when dependencies are built.
