file(REMOVE_RECURSE
  "CMakeFiles/milc_lattice.dir/fields.cpp.o"
  "CMakeFiles/milc_lattice.dir/fields.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/gauge_transform.cpp.o"
  "CMakeFiles/milc_lattice.dir/gauge_transform.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/geometry.cpp.o"
  "CMakeFiles/milc_lattice.dir/geometry.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/hisq.cpp.o"
  "CMakeFiles/milc_lattice.dir/hisq.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/io.cpp.o"
  "CMakeFiles/milc_lattice.dir/io.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/metropolis.cpp.o"
  "CMakeFiles/milc_lattice.dir/metropolis.cpp.o.d"
  "CMakeFiles/milc_lattice.dir/soa.cpp.o"
  "CMakeFiles/milc_lattice.dir/soa.cpp.o.d"
  "libmilc_lattice.a"
  "libmilc_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
