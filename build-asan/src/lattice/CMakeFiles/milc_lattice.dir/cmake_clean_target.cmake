file(REMOVE_RECURSE
  "libmilc_lattice.a"
)
