
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/fields.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/fields.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/fields.cpp.o.d"
  "/root/repo/src/lattice/gauge_transform.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/gauge_transform.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/gauge_transform.cpp.o.d"
  "/root/repo/src/lattice/geometry.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/geometry.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/geometry.cpp.o.d"
  "/root/repo/src/lattice/hisq.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/hisq.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/hisq.cpp.o.d"
  "/root/repo/src/lattice/io.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/io.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/io.cpp.o.d"
  "/root/repo/src/lattice/metropolis.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/metropolis.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/metropolis.cpp.o.d"
  "/root/repo/src/lattice/soa.cpp" "src/lattice/CMakeFiles/milc_lattice.dir/soa.cpp.o" "gcc" "src/lattice/CMakeFiles/milc_lattice.dir/soa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/su3/CMakeFiles/milc_su3.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/complexlib/CMakeFiles/milc_complexlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
