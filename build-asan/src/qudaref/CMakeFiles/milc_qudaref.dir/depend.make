# Empty dependencies file for milc_qudaref.
# This may be replaced when dependencies are built.
