file(REMOVE_RECURSE
  "CMakeFiles/milc_qudaref.dir/staggered_test.cpp.o"
  "CMakeFiles/milc_qudaref.dir/staggered_test.cpp.o.d"
  "libmilc_qudaref.a"
  "libmilc_qudaref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_qudaref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
