file(REMOVE_RECURSE
  "libmilc_qudaref.a"
)
