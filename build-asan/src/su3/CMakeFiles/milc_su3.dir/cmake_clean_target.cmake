file(REMOVE_RECURSE
  "libmilc_su3.a"
)
