# Empty dependencies file for milc_su3.
# This may be replaced when dependencies are built.
