file(REMOVE_RECURSE
  "CMakeFiles/milc_su3.dir/random_su3.cpp.o"
  "CMakeFiles/milc_su3.dir/random_su3.cpp.o.d"
  "CMakeFiles/milc_su3.dir/reconstruct.cpp.o"
  "CMakeFiles/milc_su3.dir/reconstruct.cpp.o.d"
  "libmilc_su3.a"
  "libmilc_su3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_su3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
