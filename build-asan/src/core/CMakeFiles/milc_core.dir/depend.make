# Empty dependencies file for milc_core.
# This may be replaced when dependencies are built.
