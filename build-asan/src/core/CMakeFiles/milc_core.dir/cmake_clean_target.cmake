file(REMOVE_RECURSE
  "libmilc_core.a"
)
