
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compressed.cpp" "src/core/CMakeFiles/milc_core.dir/compressed.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/compressed.cpp.o.d"
  "/root/repo/src/core/dslash_ref.cpp" "src/core/CMakeFiles/milc_core.dir/dslash_ref.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/dslash_ref.cpp.o.d"
  "/root/repo/src/core/precision.cpp" "src/core/CMakeFiles/milc_core.dir/precision.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/precision.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/milc_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/milc_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/milc_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/staggered_operator.cpp" "src/core/CMakeFiles/milc_core.dir/staggered_operator.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/staggered_operator.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/milc_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/variants.cpp" "src/core/CMakeFiles/milc_core.dir/variants.cpp.o" "gcc" "src/core/CMakeFiles/milc_core.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/lattice/CMakeFiles/milc_lattice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ksan/CMakeFiles/milc_ksan.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/su3/CMakeFiles/milc_su3.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/complexlib/CMakeFiles/milc_complexlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
