file(REMOVE_RECURSE
  "CMakeFiles/milc_core.dir/compressed.cpp.o"
  "CMakeFiles/milc_core.dir/compressed.cpp.o.d"
  "CMakeFiles/milc_core.dir/dslash_ref.cpp.o"
  "CMakeFiles/milc_core.dir/dslash_ref.cpp.o.d"
  "CMakeFiles/milc_core.dir/precision.cpp.o"
  "CMakeFiles/milc_core.dir/precision.cpp.o.d"
  "CMakeFiles/milc_core.dir/problem.cpp.o"
  "CMakeFiles/milc_core.dir/problem.cpp.o.d"
  "CMakeFiles/milc_core.dir/runner.cpp.o"
  "CMakeFiles/milc_core.dir/runner.cpp.o.d"
  "CMakeFiles/milc_core.dir/solver.cpp.o"
  "CMakeFiles/milc_core.dir/solver.cpp.o.d"
  "CMakeFiles/milc_core.dir/staggered_operator.cpp.o"
  "CMakeFiles/milc_core.dir/staggered_operator.cpp.o.d"
  "CMakeFiles/milc_core.dir/strategy.cpp.o"
  "CMakeFiles/milc_core.dir/strategy.cpp.o.d"
  "CMakeFiles/milc_core.dir/variants.cpp.o"
  "CMakeFiles/milc_core.dir/variants.cpp.o.d"
  "libmilc_core.a"
  "libmilc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
