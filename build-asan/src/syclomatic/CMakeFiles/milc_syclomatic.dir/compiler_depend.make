# Empty compiler generated dependencies file for milc_syclomatic.
# This may be replaced when dependencies are built.
