file(REMOVE_RECURSE
  "libmilc_syclomatic.a"
)
