file(REMOVE_RECURSE
  "CMakeFiles/milc_syclomatic.dir/translator.cpp.o"
  "CMakeFiles/milc_syclomatic.dir/translator.cpp.o.d"
  "libmilc_syclomatic.a"
  "libmilc_syclomatic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milc_syclomatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
