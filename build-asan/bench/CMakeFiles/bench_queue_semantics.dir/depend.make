# Empty dependencies file for bench_queue_semantics.
# This may be replaced when dependencies are built.
