file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_semantics.dir/bench_queue_semantics.cpp.o"
  "CMakeFiles/bench_queue_semantics.dir/bench_queue_semantics.cpp.o.d"
  "bench_queue_semantics"
  "bench_queue_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
