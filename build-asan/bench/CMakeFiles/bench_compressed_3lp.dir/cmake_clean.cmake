file(REMOVE_RECURSE
  "CMakeFiles/bench_compressed_3lp.dir/bench_compressed_3lp.cpp.o"
  "CMakeFiles/bench_compressed_3lp.dir/bench_compressed_3lp.cpp.o.d"
  "bench_compressed_3lp"
  "bench_compressed_3lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressed_3lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
