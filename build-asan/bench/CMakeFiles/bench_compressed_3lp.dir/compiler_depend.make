# Empty compiler generated dependencies file for bench_compressed_3lp.
# This may be replaced when dependencies are built.
