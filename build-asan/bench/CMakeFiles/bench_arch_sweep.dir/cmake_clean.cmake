file(REMOVE_RECURSE
  "CMakeFiles/bench_arch_sweep.dir/bench_arch_sweep.cpp.o"
  "CMakeFiles/bench_arch_sweep.dir/bench_arch_sweep.cpp.o.d"
  "bench_arch_sweep"
  "bench_arch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
