# Empty compiler generated dependencies file for bench_arch_sweep.
# This may be replaced when dependencies are built.
