# Empty compiler generated dependencies file for bench_quda_recon.
# This may be replaced when dependencies are built.
