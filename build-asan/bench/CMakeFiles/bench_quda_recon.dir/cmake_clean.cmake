file(REMOVE_RECURSE
  "CMakeFiles/bench_quda_recon.dir/bench_quda_recon.cpp.o"
  "CMakeFiles/bench_quda_recon.dir/bench_quda_recon.cpp.o.d"
  "bench_quda_recon"
  "bench_quda_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quda_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
