# Empty dependencies file for bench_mixed_solver.
# This may be replaced when dependencies are built.
