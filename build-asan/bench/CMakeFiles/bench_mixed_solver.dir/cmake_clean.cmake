file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_solver.dir/bench_mixed_solver.cpp.o"
  "CMakeFiles/bench_mixed_solver.dir/bench_mixed_solver.cpp.o.d"
  "bench_mixed_solver"
  "bench_mixed_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
