file(REMOVE_RECURSE
  "CMakeFiles/bench_3lp1_variants.dir/bench_3lp1_variants.cpp.o"
  "CMakeFiles/bench_3lp1_variants.dir/bench_3lp1_variants.cpp.o.d"
  "bench_3lp1_variants"
  "bench_3lp1_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_3lp1_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
