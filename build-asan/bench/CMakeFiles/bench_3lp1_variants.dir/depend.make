# Empty dependencies file for bench_3lp1_variants.
# This may be replaced when dependencies are built.
