# Empty dependencies file for bench_layout_ablation.
# This may be replaced when dependencies are built.
