file(REMOVE_RECURSE
  "CMakeFiles/bench_layout_ablation.dir/bench_layout_ablation.cpp.o"
  "CMakeFiles/bench_layout_ablation.dir/bench_layout_ablation.cpp.o.d"
  "bench_layout_ablation"
  "bench_layout_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
