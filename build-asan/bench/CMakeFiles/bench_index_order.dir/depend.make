# Empty dependencies file for bench_index_order.
# This may be replaced when dependencies are built.
