file(REMOVE_RECURSE
  "CMakeFiles/bench_index_order.dir/bench_index_order.cpp.o"
  "CMakeFiles/bench_index_order.dir/bench_index_order.cpp.o.d"
  "bench_index_order"
  "bench_index_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
