file(REMOVE_RECURSE
  "CMakeFiles/bench_wilson.dir/bench_wilson.cpp.o"
  "CMakeFiles/bench_wilson.dir/bench_wilson.cpp.o.d"
  "bench_wilson"
  "bench_wilson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
