# Empty compiler generated dependencies file for bench_wilson.
# This may be replaced when dependencies are built.
