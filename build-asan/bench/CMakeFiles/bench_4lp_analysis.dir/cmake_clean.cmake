file(REMOVE_RECURSE
  "CMakeFiles/bench_4lp_analysis.dir/bench_4lp_analysis.cpp.o"
  "CMakeFiles/bench_4lp_analysis.dir/bench_4lp_analysis.cpp.o.d"
  "bench_4lp_analysis"
  "bench_4lp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_4lp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
