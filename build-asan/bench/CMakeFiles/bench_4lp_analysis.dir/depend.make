# Empty dependencies file for bench_4lp_analysis.
# This may be replaced when dependencies are built.
