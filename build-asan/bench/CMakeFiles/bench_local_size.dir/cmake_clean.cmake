file(REMOVE_RECURSE
  "CMakeFiles/bench_local_size.dir/bench_local_size.cpp.o"
  "CMakeFiles/bench_local_size.dir/bench_local_size.cpp.o.d"
  "bench_local_size"
  "bench_local_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
