# Empty dependencies file for bench_local_size.
# This may be replaced when dependencies are built.
