# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-asan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig6_sanitize_smoke "/root/repo/build-asan/bench/bench_fig6" "--sanitize" "--L" "8")
set_tests_properties(bench_fig6_sanitize_smoke PROPERTIES  LABELS "sanitizer" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;10;add_test;/root/repo/bench/CMakeLists.txt;0;")
