file(REMOVE_RECURSE
  "CMakeFiles/test_compressed.dir/test_compressed.cpp.o"
  "CMakeFiles/test_compressed.dir/test_compressed.cpp.o.d"
  "test_compressed"
  "test_compressed.pdb"
  "test_compressed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
