# Empty dependencies file for test_compressed.
# This may be replaced when dependencies are built.
