file(REMOVE_RECURSE
  "CMakeFiles/test_dslash_properties.dir/test_dslash_properties.cpp.o"
  "CMakeFiles/test_dslash_properties.dir/test_dslash_properties.cpp.o.d"
  "test_dslash_properties"
  "test_dslash_properties.pdb"
  "test_dslash_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dslash_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
