# Empty dependencies file for test_wilson_solver.
# This may be replaced when dependencies are built.
