file(REMOVE_RECURSE
  "CMakeFiles/test_wilson_solver.dir/test_wilson_solver.cpp.o"
  "CMakeFiles/test_wilson_solver.dir/test_wilson_solver.cpp.o.d"
  "test_wilson_solver"
  "test_wilson_solver.pdb"
  "test_wilson_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wilson_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
