
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_wilson_solver.cpp" "tests/CMakeFiles/test_wilson_solver.dir/test_wilson_solver.cpp.o" "gcc" "tests/CMakeFiles/test_wilson_solver.dir/test_wilson_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/wilson/CMakeFiles/milc_wilson.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/milc_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lattice/CMakeFiles/milc_lattice.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/su3/CMakeFiles/milc_su3.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/complexlib/CMakeFiles/milc_complexlib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ksan/CMakeFiles/milc_ksan.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
