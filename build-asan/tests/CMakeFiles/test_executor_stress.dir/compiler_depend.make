# Empty compiler generated dependencies file for test_executor_stress.
# This may be replaced when dependencies are built.
