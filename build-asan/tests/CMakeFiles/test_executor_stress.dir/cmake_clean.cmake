file(REMOVE_RECURSE
  "CMakeFiles/test_executor_stress.dir/test_executor_stress.cpp.o"
  "CMakeFiles/test_executor_stress.dir/test_executor_stress.cpp.o.d"
  "test_executor_stress"
  "test_executor_stress.pdb"
  "test_executor_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
