file(REMOVE_RECURSE
  "CMakeFiles/test_queue_events.dir/test_queue_events.cpp.o"
  "CMakeFiles/test_queue_events.dir/test_queue_events.cpp.o.d"
  "test_queue_events"
  "test_queue_events.pdb"
  "test_queue_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
