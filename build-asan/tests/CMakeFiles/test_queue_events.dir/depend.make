# Empty dependencies file for test_queue_events.
# This may be replaced when dependencies are built.
