file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_occupancy.dir/test_gpusim_occupancy.cpp.o"
  "CMakeFiles/test_gpusim_occupancy.dir/test_gpusim_occupancy.cpp.o.d"
  "test_gpusim_occupancy"
  "test_gpusim_occupancy.pdb"
  "test_gpusim_occupancy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
