# Empty dependencies file for test_gpusim_occupancy.
# This may be replaced when dependencies are built.
