file(REMOVE_RECURSE
  "CMakeFiles/test_cudacompat.dir/test_cudacompat.cpp.o"
  "CMakeFiles/test_cudacompat.dir/test_cudacompat.cpp.o.d"
  "test_cudacompat"
  "test_cudacompat.pdb"
  "test_cudacompat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudacompat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
