# Empty dependencies file for test_cudacompat.
# This may be replaced when dependencies are built.
