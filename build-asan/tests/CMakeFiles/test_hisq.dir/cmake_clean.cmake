file(REMOVE_RECURSE
  "CMakeFiles/test_hisq.dir/test_hisq.cpp.o"
  "CMakeFiles/test_hisq.dir/test_hisq.cpp.o.d"
  "test_hisq"
  "test_hisq.pdb"
  "test_hisq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hisq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
