# Empty dependencies file for test_hisq.
# This may be replaced when dependencies are built.
