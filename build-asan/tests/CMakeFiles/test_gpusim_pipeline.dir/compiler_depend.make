# Empty compiler generated dependencies file for test_gpusim_pipeline.
# This may be replaced when dependencies are built.
