file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_pipeline.dir/test_gpusim_pipeline.cpp.o"
  "CMakeFiles/test_gpusim_pipeline.dir/test_gpusim_pipeline.cpp.o.d"
  "test_gpusim_pipeline"
  "test_gpusim_pipeline.pdb"
  "test_gpusim_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
