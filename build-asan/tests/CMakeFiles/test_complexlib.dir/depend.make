# Empty dependencies file for test_complexlib.
# This may be replaced when dependencies are built.
