file(REMOVE_RECURSE
  "CMakeFiles/test_complexlib.dir/test_complexlib.cpp.o"
  "CMakeFiles/test_complexlib.dir/test_complexlib.cpp.o.d"
  "test_complexlib"
  "test_complexlib.pdb"
  "test_complexlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complexlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
