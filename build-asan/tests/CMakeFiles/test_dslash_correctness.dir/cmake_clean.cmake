file(REMOVE_RECURSE
  "CMakeFiles/test_dslash_correctness.dir/test_dslash_correctness.cpp.o"
  "CMakeFiles/test_dslash_correctness.dir/test_dslash_correctness.cpp.o.d"
  "test_dslash_correctness"
  "test_dslash_correctness.pdb"
  "test_dslash_correctness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dslash_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
