file(REMOVE_RECURSE
  "CMakeFiles/test_profiler_output.dir/test_profiler_output.cpp.o"
  "CMakeFiles/test_profiler_output.dir/test_profiler_output.cpp.o.d"
  "test_profiler_output"
  "test_profiler_output.pdb"
  "test_profiler_output[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiler_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
