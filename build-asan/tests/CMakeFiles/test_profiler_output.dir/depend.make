# Empty dependencies file for test_profiler_output.
# This may be replaced when dependencies are built.
