file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_shapes.dir/test_lattice_shapes.cpp.o"
  "CMakeFiles/test_lattice_shapes.dir/test_lattice_shapes.cpp.o.d"
  "test_lattice_shapes"
  "test_lattice_shapes.pdb"
  "test_lattice_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
