# Empty compiler generated dependencies file for test_lattice_shapes.
# This may be replaced when dependencies are built.
