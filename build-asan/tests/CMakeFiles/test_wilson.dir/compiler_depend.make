# Empty compiler generated dependencies file for test_wilson.
# This may be replaced when dependencies are built.
