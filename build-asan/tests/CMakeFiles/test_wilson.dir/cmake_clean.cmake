file(REMOVE_RECURSE
  "CMakeFiles/test_wilson.dir/test_wilson.cpp.o"
  "CMakeFiles/test_wilson.dir/test_wilson.cpp.o.d"
  "test_wilson"
  "test_wilson.pdb"
  "test_wilson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wilson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
