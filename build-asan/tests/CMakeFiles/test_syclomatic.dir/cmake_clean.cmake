file(REMOVE_RECURSE
  "CMakeFiles/test_syclomatic.dir/test_syclomatic.cpp.o"
  "CMakeFiles/test_syclomatic.dir/test_syclomatic.cpp.o.d"
  "test_syclomatic"
  "test_syclomatic.pdb"
  "test_syclomatic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syclomatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
