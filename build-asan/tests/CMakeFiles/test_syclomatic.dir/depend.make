# Empty dependencies file for test_syclomatic.
# This may be replaced when dependencies are built.
