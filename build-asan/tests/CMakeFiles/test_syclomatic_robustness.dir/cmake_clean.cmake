file(REMOVE_RECURSE
  "CMakeFiles/test_syclomatic_robustness.dir/test_syclomatic_robustness.cpp.o"
  "CMakeFiles/test_syclomatic_robustness.dir/test_syclomatic_robustness.cpp.o.d"
  "test_syclomatic_robustness"
  "test_syclomatic_robustness.pdb"
  "test_syclomatic_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syclomatic_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
