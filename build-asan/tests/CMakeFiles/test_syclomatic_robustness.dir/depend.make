# Empty dependencies file for test_syclomatic_robustness.
# This may be replaced when dependencies are built.
