file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_cache.dir/test_gpusim_cache.cpp.o"
  "CMakeFiles/test_gpusim_cache.dir/test_gpusim_cache.cpp.o.d"
  "test_gpusim_cache"
  "test_gpusim_cache.pdb"
  "test_gpusim_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
