# Empty dependencies file for test_minisycl.
# This may be replaced when dependencies are built.
