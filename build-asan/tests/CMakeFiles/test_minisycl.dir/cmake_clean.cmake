file(REMOVE_RECURSE
  "CMakeFiles/test_minisycl.dir/test_minisycl.cpp.o"
  "CMakeFiles/test_minisycl.dir/test_minisycl.cpp.o.d"
  "test_minisycl"
  "test_minisycl.pdb"
  "test_minisycl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minisycl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
