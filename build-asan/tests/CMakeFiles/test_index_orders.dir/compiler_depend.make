# Empty compiler generated dependencies file for test_index_orders.
# This may be replaced when dependencies are built.
