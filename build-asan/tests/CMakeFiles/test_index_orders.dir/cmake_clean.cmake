file(REMOVE_RECURSE
  "CMakeFiles/test_index_orders.dir/test_index_orders.cpp.o"
  "CMakeFiles/test_index_orders.dir/test_index_orders.cpp.o.d"
  "test_index_orders"
  "test_index_orders.pdb"
  "test_index_orders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
