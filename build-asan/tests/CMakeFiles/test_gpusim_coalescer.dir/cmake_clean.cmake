file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_coalescer.dir/test_gpusim_coalescer.cpp.o"
  "CMakeFiles/test_gpusim_coalescer.dir/test_gpusim_coalescer.cpp.o.d"
  "test_gpusim_coalescer"
  "test_gpusim_coalescer.pdb"
  "test_gpusim_coalescer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
