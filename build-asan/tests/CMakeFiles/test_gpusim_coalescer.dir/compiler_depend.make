# Empty compiler generated dependencies file for test_gpusim_coalescer.
# This may be replaced when dependencies are built.
