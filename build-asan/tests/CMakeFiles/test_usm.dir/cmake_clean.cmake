file(REMOVE_RECURSE
  "CMakeFiles/test_usm.dir/test_usm.cpp.o"
  "CMakeFiles/test_usm.dir/test_usm.cpp.o.d"
  "test_usm"
  "test_usm.pdb"
  "test_usm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
