# Empty dependencies file for test_usm.
# This may be replaced when dependencies are built.
