# Empty compiler generated dependencies file for test_ksan.
# This may be replaced when dependencies are built.
