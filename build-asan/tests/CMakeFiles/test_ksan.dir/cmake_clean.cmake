file(REMOVE_RECURSE
  "CMakeFiles/test_ksan.dir/test_ksan.cpp.o"
  "CMakeFiles/test_ksan.dir/test_ksan.cpp.o.d"
  "test_ksan"
  "test_ksan.pdb"
  "test_ksan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
