# Empty compiler generated dependencies file for test_qudaref.
# This may be replaced when dependencies are built.
