file(REMOVE_RECURSE
  "CMakeFiles/test_qudaref.dir/test_qudaref.cpp.o"
  "CMakeFiles/test_qudaref.dir/test_qudaref.cpp.o.d"
  "test_qudaref"
  "test_qudaref.pdb"
  "test_qudaref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qudaref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
