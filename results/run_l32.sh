#!/bin/bash
# Official paper-scale runs (L=32), sequential to respect the single core.
cd /root/repo
for b in bench_fig6 bench_table1 bench_quda_recon bench_3lp1_variants \
         bench_queue_semantics bench_index_order bench_4lp_analysis \
         bench_local_size bench_layout_ablation bench_precision \
         bench_compressed_3lp bench_wilson; do
  echo "=== running $b --L 32 ==="
  ./build/bench/$b --L 32 > results/L32/$b.txt 2>&1
  echo "=== done $b (exit $?) ==="
done
echo ALL_L32_DONE
