#!/bin/bash
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt | tail -2
echo CAPTURE_DONE
