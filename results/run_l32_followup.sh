#!/bin/bash
cd /root/repo
echo "=== running bench_table1 --L 32 (follow-up, cascade divergence counting) ==="
./build/bench/bench_table1 --L 32 > results/L32/bench_table1.txt 2>&1
echo "=== done bench_table1 (exit $?) ==="
echo FOLLOWUP_DONE
