// quickstart — the five-minute tour: build a random gauge problem, apply the
// MILC-Dslash operator with the flagship 3LP-1 strategy, check the result
// against the serial reference, and profile the same kernel on the simulated
// A100.
//
//   ./examples/quickstart [--L 16]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"
#include "gpusim/profiler.hpp"
#include "minisycl/device.hpp"

int main(int argc, char** argv) {
  using namespace milc;
  int L = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
  }

  // 1. The simulated device.
  minisycl::device dev;
  std::printf("device: %s\n", dev.name().c_str());
  std::printf("  compute units=%d  max work-group=%d  warp=%d  local mem=%lld KB\n\n",
              dev.max_compute_units(), dev.max_work_group_size(), dev.sub_group_size(),
              static_cast<long long>(dev.local_mem_size() / 1024));

  // 2. A Dslash problem: L^4 lattice, random SU(3) gauge field, random source.
  DslashProblem problem(L, /*seed=*/42);
  std::printf("lattice %d^4: %lld target sites, %.1f MFLOP per Dslash\n\n", L,
              static_cast<long long>(problem.sites()), problem.flops() / 1e6);

  // 3. Apply C = Dslash x B with the paper's best strategy (3LP-1, k-major).
  DslashRunner runner;
  runner.run_functional(problem, Strategy::LP3_1, IndexOrder::kMajor, /*local=*/96);
  std::printf("applied 3LP-1: |C|^2 = %.6f\n", norm2(problem.c()));

  // 4. Verify against the serial reference implementation of eq. (1).
  ColorField ref(problem.geom(), problem.target_parity());
  dslash_reference(problem.view(), problem.neighbors(), problem.b(), ref);
  std::printf("max |kernel - reference| = %.3e\n\n", max_abs_diff(problem.c(), ref));

  // 5. Profile the kernel on the simulated A100 (Nsight-style record).
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 96,
                 .variant = Variant::SYCL};
  const RunResult r = runner.run(problem, req);
  std::printf("profiled %s: %.1f GFLOP/s (kernel %.1f us)\n\n", r.label.c_str(), r.gflops,
              r.kernel_us);
  gpusim::print_kernel_report(std::cout, r.stats);
  return 0;
}
