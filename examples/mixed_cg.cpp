// mixed_cg — QUDA-style mixed-precision solver (defect correction / reliable
// updates): the inner CG runs entirely in single precision — roughly half
// the memory traffic of the double-precision operator on a bandwidth-bound
// kernel — while an outer double-precision residual correction restores full
// accuracy.  This is the "mixed-precision solvers" feature of QUDA the paper
// cites (§I, §IV-D3), built on the same 3LP-1 kernel instantiated at float.
//
//   ./examples/mixed_cg [--L 8] [--mass 0.1] [--tol 1e-10]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/dslash_ref.hpp"
#include "core/precision.hpp"

using namespace milc;

namespace {

struct Operators {
  const LatticeGeom& geom;
  GaugeView ve, vo;
  NeighborTable ne, no;
  DeviceGaugeLayout ge, go;
  FloatDslash feo, foe;
  double mass;

  Operators(const LatticeGeom& g, const GaugeConfiguration& cfg, double m)
      : geom(g),
        ve(g, cfg, Parity::Even),
        vo(g, cfg, Parity::Odd),
        ne(g, Parity::Even),
        no(g, Parity::Odd),
        ge(ve),
        go(vo),
        feo(ge, ne),
        foe(go, no),
        mass(m) {}

  /// Double-precision A x = m^2 x - D_eo D_oe x (serial reference kernels).
  void apply_double(const ColorField& in, ColorField& out, ColorField& tmp_o) const {
    dslash_reference(vo, no, in, tmp_o);
    dslash_reference(ve, ne, tmp_o, out);
    scale(-1.0, out);
    axpy(mass * mass, in, out);
  }

  /// Single-precision A, two float 3LP-1 kernel launches.
  void apply_float(const FloatColorField& in, FloatColorField& out,
                   FloatColorField& tmp_o) const {
    foe.apply(in, tmp_o);
    feo.apply(tmp_o, out);
    for (std::int64_t s = 0; s < out.size(); ++s) {
      for (int i = 0; i < kColors; ++i) {
        out[s].c[i].re = static_cast<float>(mass * mass) * in[s].c[i].re - out[s].c[i].re;
        out[s].c[i].im = static_cast<float>(mass * mass) * in[s].c[i].im - out[s].c[i].im;
      }
    }
  }
};

/// Inner float CG: solve A e = r to a (float-limited) relative tolerance.
int float_cg(const Operators& ops, const FloatColorField& rhs, FloatColorField& x,
             double rel_tol, int max_iter) {
  const LatticeGeom& g = ops.geom;
  FloatColorField r = rhs, p = rhs, Ap(g, Parity::Even), tmp_o(g, Parity::Odd);
  x.zero();
  double rr = norm2(r);
  const double target = rel_tol * rel_tol * norm2(rhs);
  int it = 0;
  for (; it < max_iter && rr > target; ++it) {
    ops.apply_float(p, Ap, tmp_o);
    const double alpha = rr / dot(p, Ap).re;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, p);
    rr = rr_new;
  }
  return it;
}

}  // namespace

int main(int argc, char** argv) {
  int L = 8;
  double mass = 0.1, tol = 1e-10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--mass") == 0 && i + 1 < argc) mass = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) tol = std::atof(argv[++i]);
  }

  LatticeGeom geom(L);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(17);
  Operators ops(geom, cfg, mass);

  ColorField b(geom, Parity::Even), x(geom, Parity::Even);
  b.fill_random(23);
  x.zero();
  const double b2 = norm2(b);

  std::printf("mixed-precision CG on %d^4, mass=%.3f, target %.1e\n", L, mass, tol);
  ColorField r = b, tmp_o(geom, Parity::Odd), Ax(geom, Parity::Even);
  int outer = 0, inner_total = 0;
  double rel = 1.0;
  for (; outer < 50; ++outer) {
    // Outer double residual: r = b - A x.
    ops.apply_double(x, Ax, tmp_o);
    r = b;
    axpy(-1.0, Ax, r);
    rel = std::sqrt(norm2(r) / b2);
    std::printf("  outer %2d: double residual %.3e\n", outer, rel);
    if (rel < tol) break;

    // Inner float solve of the defect equation A e = r.
    FloatColorField rf(r), ef(geom, Parity::Even);
    const int inner = float_cg(ops, rf, ef, 1e-5, 1000);
    inner_total += inner;

    // Reliable update in double.
    const ColorField e = ef.to_double(geom);
    axpy(1.0, e, x);
  }
  std::printf("converged: %.3e after %d outer corrections, %d inner float iterations\n", rel,
              outer, inner_total);
  std::printf("(each inner iteration moves ~half the bytes of a double iteration —\n"
              " see bench_precision for the simulated kernel-speed comparison)\n");
  return rel < tol * 10 ? 0 : 1;
}
