// hisq_pipeline — the miniature su3_rhmd_hisq: everything between "empty
// lattice" and "quark propagator", end to end:
//
//   1. thermalise thin links with Metropolis at coupling beta
//   2. build HISQ-style fat (smeared + reunitarised) and long (Naik) links
//   3. invert the staggered operator on the smeared field with CG
//
// This is the production pipeline whose inner loop the paper's Dslash
// kernels accelerate.
//
//   ./examples/hisq_pipeline [--L 6] [--beta 6.0] [--mass 0.2] [--sweeps 8]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/solver.hpp"
#include "lattice/hisq.hpp"
#include "lattice/metropolis.hpp"

using namespace milc;

int main(int argc, char** argv) {
  int L = 6, sweeps = 8;
  double beta = 6.0, mass = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--beta") == 0 && i + 1 < argc) beta = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--mass") == 0 && i + 1 < argc) mass = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--sweeps") == 0 && i + 1 < argc) sweeps = std::atoi(argv[++i]);
  }

  LatticeGeom geom(L);

  // 1. Gauge generation.
  GaugeConfiguration thin(geom);
  thin.fill_random(7);
  std::printf("thermalising %d^4 thin links at beta=%.2f ...\n", L, beta);
  MetropolisOptions mopts;
  mopts.beta = beta;
  mopts.step = 0.25;
  mopts.hits_per_link = 3;
  for (int s = 0; s < sweeps; ++s) {
    const SweepStats st = metropolis_sweep(geom, thin, mopts, static_cast<std::uint64_t>(s));
    std::printf("  sweep %2d: plaquette %.4f  (acceptance %.0f%%)\n", s, st.avg_plaquette,
                100.0 * st.acceptance);
  }

  // 2. HISQ link construction.
  std::printf("building HISQ links (fat: smeared + U(3)-projected, long: Naik) ...\n");
  const GaugeConfiguration hisq = build_hisq_links(geom, thin);
  std::printf("  fat-link plaquette: %.4f (smearing raises it above the thin %.4f)\n",
              average_plaquette(geom, hisq), average_plaquette(geom, thin));

  // 3. Propagator on the smeared field.
  StaggeredOperator op(geom, hisq, mass);
  ColorField b(geom, Parity::Even), x(geom, Parity::Even);
  b.zero();
  b[0].c[0] = {1.0, 0.0};  // point source
  x.zero();
  CgOptions copts;
  copts.rel_tol = 1e-8;
  const CgResult r = cg_solve(op, b, x, copts);
  std::printf("CG on the HISQ field: %s in %d iterations (true residual %.2e)\n",
              r.converged ? "converged" : "NOT converged", r.iterations,
              r.true_relative_residual);
  std::printf("|propagator|^2 = %.6e\n", norm2(x));
  return r.converged ? 0 : 1;
}
