// cg_solver — the workload the Dslash kernel exists for: solving the
// staggered Dirac equation.  The even-odd preconditioned normal operator
//
//     A = m^2 I - D_eo D_oe
//
// is Hermitian positive definite (D_eo^dagger = -D_oe), so conjugate
// gradients converge; every A-application is two Dslash kernel launches —
// exactly how MILC's su3_rhmd_hisq spends most of its cycles.
//
//   ./examples/cg_solver [--L 8] [--mass 0.1] [--tol 1e-8]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/kernels_3lp.hpp"
#include "core/dslash_ref.hpp"
#include "minisycl/queue.hpp"

using namespace milc;

namespace {

/// One parity's worth of Dslash machinery.
struct HalfOperator {
  DeviceGaugeLayout gauge;
  NeighborTable nbr;

  HalfOperator(const LatticeGeom& geom, const GaugeConfiguration& cfg, Parity target)
      : gauge(GaugeView(geom, cfg, target)), nbr(geom, target) {}

  /// out(target parity) = Dslash x in(source parity), via the 3LP-1 kernel.
  void apply(minisycl::queue& q, const ColorField& in, ColorField& out) const {
    const DslashArgs<dcomplex> args = make_dslash_args(gauge, nbr, in, out);
    Dslash3LP1Kernel<Order3::kMajor> kernel{args};
    minisycl::LaunchSpec spec;
    spec.global_size = gauge.sites() * 12;
    spec.local_size = 96;
    spec.shared_bytes = Dslash3LP1Kernel<Order3::kMajor>::shared_bytes(96);
    spec.num_phases = 2;
    spec.traits = Dslash3LP1Kernel<Order3::kMajor>::traits();
    q.submit(spec, kernel);
  }
};

}  // namespace

int main(int argc, char** argv) {
  int L = 8;
  double mass = 0.1, tol = 1e-8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--mass") == 0 && i + 1 < argc) mass = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) tol = std::atof(argv[++i]);
  }

  LatticeGeom geom(L);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(7);
  HalfOperator D_eo(geom, cfg, Parity::Even);  // odd -> even
  HalfOperator D_oe(geom, cfg, Parity::Odd);   // even -> odd
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order);

  ColorField b(geom, Parity::Even), x(geom, Parity::Even);
  b.fill_random(11);
  x.zero();

  ColorField tmp_o(geom, Parity::Odd), tmp_e(geom, Parity::Even);
  // A x = m^2 x - D_eo (D_oe x)
  auto apply_A = [&](const ColorField& in, ColorField& out) {
    D_oe.apply(q, in, tmp_o);
    D_eo.apply(q, tmp_o, out);
    scale(-1.0, out);
    axpy(mass * mass, in, out);
  };

  // Conjugate gradients.
  ColorField r = b, p = b, Ap(geom, Parity::Even);
  double rr = norm2(r);
  const double b2 = norm2(b);
  std::printf("CG on %d^4 lattice, mass=%.3f, |b|^2=%.4e\n", L, mass, b2);
  int it = 0;
  for (; it < 2000 && rr / b2 > tol * tol; ++it) {
    apply_A(p, Ap);
    const double pAp = dot(p, Ap).re;
    const double alpha = rr / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, p);  // p = r + beta p
    rr = rr_new;
    if (it % 10 == 0) std::printf("  iter %4d  relative residual %.3e\n", it, std::sqrt(rr / b2));
  }
  std::printf("converged in %d iterations: relative residual %.3e\n", it, std::sqrt(rr / b2));

  // Independent verification: ||A x - b|| with the serial reference Dslash.
  GaugeView ve(geom, cfg, Parity::Even), vo(geom, cfg, Parity::Odd);
  NeighborTable ne(geom, Parity::Even), no(geom, Parity::Odd);
  ColorField t1(geom, Parity::Odd), t2(geom, Parity::Even);
  dslash_reference(vo, no, x, t1);
  dslash_reference(ve, ne, t1, t2);
  scale(-1.0, t2);
  axpy(mass * mass, x, t2);
  axpy(-1.0, b, t2);
  std::printf("reference check: ||A x - b|| / ||b|| = %.3e\n",
              std::sqrt(norm2(t2) / b2));
  return std::sqrt(rr / b2) <= tol * 10 ? 0 : 1;
}
