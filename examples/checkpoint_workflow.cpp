// checkpoint_workflow — a production-shaped end-to-end run: generate a gauge
// configuration, checkpoint it to disk, reload it (validated), invert the
// staggered operator on a point source with CG, and cross-check the
// solution.  Exercises the I/O, operator and solver layers together.
//
//   ./examples/checkpoint_workflow [--L 6] [--mass 0.25]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/solver.hpp"
#include "lattice/io.hpp"

using namespace milc;

int main(int argc, char** argv) {
  int L = 6;
  double mass = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--mass") == 0 && i + 1 < argc) mass = std::atof(argv[++i]);
  }

  LatticeGeom geom(L);

  // 1. Generate and checkpoint a configuration.
  GaugeConfiguration cfg(geom);
  cfg.fill_random(2026);
  const std::string path = "gauge_checkpoint.bin";
  io::save_gauge(path, geom, cfg);
  std::printf("saved %d^4 configuration to %s\n", L, path.c_str());

  // 2. Reload (magic, geometry and checksum validated) and verify identity.
  const GaugeConfiguration reloaded = io::load_gauge(path, geom);
  double max_diff = 0.0;
  for (std::int64_t f = 0; f < geom.volume(); f += 97) {
    for (int k = 0; k < kNdim; ++k) {
      max_diff = std::max(max_diff, max_abs_diff(cfg.fat(f, k), reloaded.fat(f, k)));
    }
  }
  std::printf("reloaded: max link difference %.1e\n", max_diff);

  // 3. Invert on a point source (one colour at the origin).
  StaggeredOperator op(geom, reloaded, mass);
  ColorField b(geom, Parity::Even), x(geom, Parity::Even);
  b.zero();
  b[0].c[0] = {1.0, 0.0};
  x.zero();
  CgOptions opts;
  opts.rel_tol = 1e-10;
  opts.log_every = 50;
  const CgResult r = cg_solve(op, b, x, opts);
  std::printf("CG: %s in %d iterations, true residual %.2e\n",
              r.converged ? "converged" : "NOT converged", r.iterations,
              r.true_relative_residual);

  // 4. Checkpoint the propagator too, reload, verify.
  io::save_color_field("propagator.bin", geom, x);
  const ColorField back = io::load_color_field("propagator.bin", geom);
  std::printf("propagator checkpoint round-trip: max diff %.1e, |x|^2 = %.6e\n",
              max_abs_diff(x, back), norm2(x));

  std::remove(path.c_str());
  std::remove("propagator.bin");
  return r.converged && max_diff == 0.0 ? 0 : 1;
}
