// autotune_explorer — a QUDA-style autotuner over the whole strategy space:
// sweeps every (strategy, index order, local size) configuration on the
// simulated A100, ranks them, and reports the tuned winner — the decision
// the paper makes by hand in §IV.
//
//   ./examples/autotune_explorer [--L 12] [--top 10]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/problem.hpp"
#include "core/runner.hpp"

using namespace milc;

int main(int argc, char** argv) {
  int L = 12, top = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) top = std::atoi(argv[++i]);
  }

  DslashProblem problem(L, 123);
  DslashRunner runner;
  std::printf("autotuning MILC-Dslash on %d^4 (%lld sites)...\n", L,
              static_cast<long long>(problem.sites()));

  std::vector<RunResult> results;
  int tried = 0, skipped = 0;
  for (Strategy s : all_strategies()) {
    for (IndexOrder o : orders_of(s)) {
      for (int ls : {32, 64, 96, 128, 192, 256, 384, 512, 768, 1024}) {
        if (!is_valid_local_size(s, o, ls, problem.sites())) {
          ++skipped;
          continue;
        }
        RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
        results.push_back(runner.run(problem, req));
        ++tried;
      }
    }
  }
  std::printf("swept %d configurations (%d rejected by the section-III rules)\n\n", tried,
              skipped);

  std::sort(results.begin(), results.end(),
            [](const RunResult& a, const RunResult& b) { return a.gflops > b.gflops; });

  std::printf("rank  %-26s %10s %12s %8s %10s\n", "configuration", "GF/s", "kernel us",
              "occ %", "bound by");
  for (int i = 0; i < std::min<int>(top, static_cast<int>(results.size())); ++i) {
    const RunResult& r = results[static_cast<std::size_t>(i)];
    std::printf("%4d  %-26s %10.1f %12.1f %7.1f%% %10s\n", i + 1, r.label.c_str(), r.gflops,
                r.kernel_us, 100.0 * r.stats.occupancy.achieved, r.stats.timing.bound_by);
  }

  const RunResult& best = results.front();
  const RunResult& worst = results.back();
  std::printf("\ntuned winner: %s (%.1f GF/s), %.2fx over the worst configuration (%s)\n",
              best.label.c_str(), best.gflops, best.gflops / worst.gflops,
              worst.label.c_str());
  return 0;
}
