// plaquette — a gauge observable on top of the lattice substrate: the
// average plaquette  (1/3) Re tr[ U_mu(x) U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+ ]
// over all sites and plane orientations.  For an ordered (unit) gauge field
// the plaquette is exactly 1; for a random SU(3) field it averages to ~0 —
// the two limits of the lattice-QCD coupling range.  Exercises the SU(3)
// algebra (matmul/adjoint/trace) and the periodic geometry.
//
//   ./examples/plaquette [--L 8]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lattice/metropolis.hpp"

using namespace milc;


int main(int argc, char** argv) {
  int L = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) L = std::atoi(argv[++i]);
  }
  LatticeGeom geom(L);

  // Ordered start: every link is the identity.
  GaugeConfiguration unit(geom);
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) {
      unit.fat(f, k) = SU3Matrix<dcomplex>::identity();
      unit.lng(f, k) = SU3Matrix<dcomplex>::identity();
    }
  }
  const double plaq_unit = average_plaquette(geom, unit);

  // Disordered start: independent Haar-random links.
  GaugeConfiguration random(geom);
  random.fill_random(99);
  const double plaq_random = average_plaquette(geom, random);

  // Thermalised: Metropolis sweeps at intermediate coupling drive the
  // disordered field toward a physical configuration in between.
  MetropolisOptions opts;
  opts.beta = 6.0;
  opts.step = 0.25;
  opts.hits_per_link = 3;
  const SweepStats st = thermalize(geom, random, opts, 10);

  std::printf("average plaquette on %d^4 (%lld sites x 6 planes):\n", L,
              static_cast<long long>(geom.volume()));
  std::printf("  ordered   (unit links):          %+.6f   (exact: 1)\n", plaq_unit);
  std::printf("  disordered (random SU3):         %+.6f   (expected: ~0, O(1/sqrt(V)))\n",
              plaq_random);
  std::printf("  thermalised (beta=6, 10 sweeps): %+.6f   (acceptance %.0f%%)\n",
              st.avg_plaquette, 100.0 * st.acceptance);

  const bool ok = std::abs(plaq_unit - 1.0) < 1e-12 && std::abs(plaq_random) < 0.05 &&
                  st.avg_plaquette > plaq_random + 0.1;
  std::printf("%s\n", ok ? "OK" : "UNEXPECTED VALUES");
  return ok ? 0 : 1;
}
